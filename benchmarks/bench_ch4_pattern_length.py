"""Figure 4.13: pattern length versus cumulative compression.

Mid-length patterns contribute the bulk of the compression; very long
patterns add a smaller tail because of their lower frequency.
"""

from repro.lam import LAM


def test_figure_4_13_pattern_length_vs_cumulative_compression(benchmark, record,
                                                              webgraph_db):
    def run():
        result = LAM(n_passes=5, max_partition_size=80, seed=0).run(webgraph_db)
        return result, result.cumulative_compression_by_length(), \
            result.pattern_length_histogram()

    result, curve, histogram = benchmark.pedantic(run, rounds=1, iterations=1)
    record("figure_4_13_pattern_length", {
        "cumulative_compression": curve,
        "length_histogram": histogram,
        "final_ratio": result.compression_ratio,
    })

    ratios = [ratio for _, ratio in curve]
    lengths = [length for length, _ in curve]
    # Cumulative compression is non-decreasing in admitted pattern length and
    # approaches the final ratio.
    assert ratios == sorted(ratios)
    assert ratios[-1] >= result.compression_ratio * 0.7
    # Short-to-mid patterns already realise most of the compression: the ratio
    # reached by half the maximum length covers most of the final value.
    midpoint = max(length for length in lengths if length <= max(lengths) / 2 + 1)
    mid_ratio = dict(curve)[midpoint]
    assert (mid_ratio - 1.0) >= 0.4 * (ratios[-1] - 1.0)
