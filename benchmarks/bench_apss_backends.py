"""APSS backend matrix benchmark: backends x measures x dataset scales.

Runs every registered engine backend over a grid of workloads, checks that
the exact backends agree pairwise, and reports wall-clock speedups against
the ``exact-loop`` reference plus a worker-count scaling column for the
sharded backend (speedup vs ``exact-blocked`` at 1/2/4 workers).  Dual
interface:

* ``PYTHONPATH=src python benchmarks/bench_apss_backends.py [--smoke|--check]``
  — standalone CLI printing the matrix (``--smoke`` shrinks the workloads
  for CI; ``--check`` only verifies the registry roster and exits, so a
  backend module that fails to import or register fails fast without any
  benchmarking; the default sizes include the 2000x200 dense cosine workload
  the engine's >=10x blocked-vs-loop claim is measured on).  ``--json PATH``
  additionally writes the rows as machine-readable JSON (per-backend
  seconds, speedups, worker counts) — CI uploads that file as an artifact so
  the ``BENCH_*.json`` trajectory tracking has per-run data.
* ``pytest benchmarks/bench_apss_backends.py`` — pytest-benchmark harness
  over the smoke matrix with shape assertions.

Results land in ``benchmarks/results/apss_backend_matrix*.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

from repro.datasets import make_clustered_vectors, make_sparse_corpus
from repro.similarity import ApssEngine, available_backends

#: Backends the registry must expose; a missing name means a backend module
#: failed to import or register, which CI should treat as a hard failure.
EXPECTED_BACKENDS = frozenset(
    {"exact-loop", "exact-blocked", "prefix-filter", "bayeslsh",
     "sharded-blocked"})

#: Candidate-generation strategies ``bayeslsh`` must declare through
#: ``parity_variants()`` — the banded column is how candidate-generation
#: regressions (a lost strategy, a renamed option) surface in ``--check``
#: before any benchmarking happens.
EXPECTED_BAYESLSH_STRATEGIES = ("all", "banded")


def check_registry() -> None:
    """Fail loudly when the backend registry lost a backend or strategy."""
    registered = set(available_backends())
    missing = EXPECTED_BACKENDS - registered
    if missing:
        raise SystemExit(
            f"APSS backend registry is missing {sorted(missing)} "
            f"(registered: {sorted(registered)}); a backend module failed "
            f"to import or register")
    from repro.similarity import get_backend_class

    strategies = tuple(options.get("candidate_strategy")
                       for options in
                       get_backend_class("bayeslsh").parity_variants())
    if strategies != EXPECTED_BAYESLSH_STRATEGIES:
        raise SystemExit(
            f"bayeslsh parity variants declare candidate strategies "
            f"{strategies}, expected {EXPECTED_BAYESLSH_STRATEGIES}; the "
            f"banded candidate path lost its registry seam")


#: Backend specs are either a registry name or ``(label, name, options)``;
#: labels keep the sharded worker-scaling rows distinguishable.
#: (workload name, dataset builder, measure, threshold, backend specs)
SMOKE_WORKLOADS = [
    ("dense-200x50-cosine",
     lambda: make_clustered_vectors(200, 50, 6, separation=4.0, seed=41,
                                    name="dense-200x50"),
     "cosine", 0.5,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("bayeslsh@all", "bayeslsh", {"candidate_strategy": "all"}),
      ("bayeslsh@banded", "bayeslsh", {"candidate_strategy": "banded"}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2})]),
    ("sparse-150x300-jaccard",
     lambda: make_sparse_corpus(150, 300, avg_doc_length=18, n_topics=5,
                                seed=43, name="sparse-150x300"),
     "jaccard", 0.3,
     ["exact-loop", "exact-blocked", "prefix-filter", "bayeslsh"]),
]

FULL_WORKLOADS = [
    # The headline workload: 2k x 200 dense cosine — blocked vs loop, plus
    # the sharded worker-count scaling ladder against exact-blocked.
    ("dense-2000x200-cosine",
     lambda: make_clustered_vectors(2000, 200, 10, separation=4.0, seed=47,
                                    name="dense-2000x200"),
     "cosine", 0.5,
     ["exact-loop", "exact-blocked",
      ("sharded@1w", "sharded-blocked", {"n_workers": 1}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2}),
      ("sharded@4w", "sharded-blocked", {"n_workers": 4})]),
    ("sparse-1500x2000-jaccard",
     lambda: make_sparse_corpus(1500, 2000, avg_doc_length=20, n_topics=12,
                                seed=49, name="sparse-1500x2000"),
     "jaccard", 0.4,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("sharded@4w", "sharded-blocked", {"n_workers": 4})]),
    ("dense-400x64-cosine-all-backends",
     lambda: make_clustered_vectors(400, 64, 8, separation=4.0, seed=51,
                                    name="dense-400x64"),
     "cosine", 0.6,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("bayeslsh@all", "bayeslsh", {"candidate_strategy": "all"}),
      ("bayeslsh@banded", "bayeslsh", {"candidate_strategy": "banded"}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2})]),
]


def _backend_spec(spec) -> tuple[str, str, dict]:
    """Normalise a backend spec into ``(label, registry name, options)``."""
    if isinstance(spec, str):
        return spec, spec, {}
    label, name, options = spec
    return label, name, dict(options)


def run_matrix(smoke: bool = True) -> list[dict]:
    """Run the workload matrix and return one row per (workload, backend)."""
    engine = ApssEngine()
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    rows: list[dict] = []
    for name, build, measure, threshold, backends in workloads:
        dataset = build()
        reference_count = None
        reference_seconds = None
        blocked_seconds = None
        for spec in backends:
            label, backend, options = _backend_spec(spec)
            result = engine.search(dataset, threshold, measure,
                                   backend=backend, **options)
            if backend == "exact-loop":
                reference_count = result.pair_count()
                reference_seconds = result.seconds
            if backend == "exact-blocked":
                blocked_seconds = result.seconds
            speedup = (reference_seconds / result.seconds
                       if reference_seconds and result.seconds > 0 else None)
            vs_blocked = (blocked_seconds / result.seconds
                          if blocked_seconds and result.seconds > 0 else None)
            rows.append({
                "workload": name,
                "n_rows": dataset.n_rows,
                "n_features": dataset.n_features,
                "measure": measure,
                "threshold": threshold,
                "backend": label,
                "n_workers": options.get("n_workers"),
                "candidate_strategy": options.get("candidate_strategy"),
                "exact": result.exact,
                "pairs": result.pair_count(),
                "reference_pairs": reference_count,
                "seconds": result.seconds,
                "speedup_vs_loop": speedup,
                "speedup_vs_blocked": vs_blocked,
            })
    return rows


def check_matrix(rows: list[dict]) -> None:
    """Assert the cross-backend invariants the matrix must uphold."""
    for row in rows:
        if row["exact"] and row["reference_pairs"] is not None:
            assert row["pairs"] == row["reference_pairs"], (
                f"{row['backend']} returned {row['pairs']} pairs on "
                f"{row['workload']}, exact-loop returned {row['reference_pairs']}")
        elif row["reference_pairs"]:
            # Approximate backends must land in the right ballpark.
            ratio = row["pairs"] / row["reference_pairs"]
            assert 0.5 < ratio < 1.5, (
                f"{row['backend']} count ratio {ratio:.2f} on {row['workload']}")


def format_table(rows: list[dict]) -> str:
    header = (f"{'workload':<28} {'backend':<14} {'pairs':>8} "
              f"{'seconds':>10} {'vs loop':>8} {'vs blocked':>11}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = (f"{row['speedup_vs_loop']:.1f}x"
                   if row["speedup_vs_loop"] else "-")
        vs_blocked = (f"{row['speedup_vs_blocked']:.2f}x"
                      if row.get("speedup_vs_blocked") else "-")
        lines.append(f"{row['workload']:<28} {row['backend']:<14} "
                     f"{row['pairs']:>8} {row['seconds']:>10.4f} "
                     f"{speedup:>8} {vs_blocked:>11}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest-benchmark harness (smoke scale)
# --------------------------------------------------------------------- #

def test_apss_backend_matrix(benchmark, record):
    check_registry()
    rows = benchmark.pedantic(lambda: run_matrix(smoke=True),
                              rounds=1, iterations=1)
    record("apss_backend_matrix_smoke", rows)
    check_matrix(rows)

    by_backend = {(r["workload"], r["backend"]): r for r in rows}
    for workload, *_ in [(w[0],) for w in SMOKE_WORKLOADS]:
        loop = by_backend[(workload, "exact-loop")]
        blocked = by_backend[(workload, "exact-blocked")]
        # The vectorised kernel must be decisively faster than the loop even
        # at smoke scale (the full 2000x200 workload shows >=10x).
        assert blocked["seconds"] * 5 < loop["seconds"], (
            f"exact-blocked only {loop['seconds'] / blocked['seconds']:.1f}x "
            f"faster on {workload}")


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def json_payload(rows: list[dict], smoke: bool) -> dict:
    """The machine-readable benchmark payload ``--json`` writes.

    One dict per (workload, backend) row — per-backend ``seconds``,
    ``speedup_vs_loop``/``speedup_vs_blocked`` and ``n_workers`` — plus
    enough run metadata to compare artifacts across CI runs.
    """
    return {
        "benchmark": "apss_backend_matrix",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backends": sorted(available_backends()),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI-sized matrix")
    parser.add_argument("--check", action="store_true",
                        help="only verify the backend registry roster "
                             "(fails fast on import/registration errors)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the matrix rows as machine-readable "
                             "JSON to PATH (uploaded as a CI artifact)")
    args = parser.parse_args(argv)

    check_registry()
    if args.check:
        print(f"backend registry ok: {sorted(available_backends())}")
        return 0
    rows = run_matrix(smoke=args.smoke)
    check_matrix(rows)
    print(format_table(rows))

    from conftest import record_result

    suffix = "_smoke" if args.smoke else ""
    path = record_result(f"apss_backend_matrix{suffix}", rows)
    print(f"\nresults written to {path}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(json_payload(rows, smoke=args.smoke), handle, indent=2,
                      default=float)
        print(f"machine-readable matrix written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
