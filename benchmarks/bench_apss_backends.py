"""APSS backend matrix benchmark: backends x measures x dataset scales.

Runs every registered engine backend over a grid of workloads, checks that
the exact backends agree pairwise, and reports wall-clock speedups against
the ``exact-loop`` reference plus a worker-count scaling column for the
sharded backend (speedup vs ``exact-blocked`` at 1/2/4 workers).  Dual
interface:

* ``PYTHONPATH=src python benchmarks/bench_apss_backends.py [--smoke|--check]``
  — standalone CLI printing the matrix (``--smoke`` shrinks the workloads
  for CI; ``--check`` only verifies the registry roster and exits, so a
  backend module that fails to import or register fails fast without any
  benchmarking; the default sizes include the 2000x200 dense cosine workload
  the engine's >=10x blocked-vs-loop claim is measured on).  ``--json PATH``
  additionally writes the rows as machine-readable JSON (per-backend
  seconds, speedups, worker counts) — CI uploads that file as an artifact so
  the ``BENCH_*.json`` trajectory tracking has per-run data.
* ``pytest benchmarks/bench_apss_backends.py`` — pytest-benchmark harness
  over the smoke matrix with shape assertions.

Results land in ``benchmarks/results/apss_backend_matrix*.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.datasets import make_clustered_vectors, make_sparse_corpus
from repro.similarity import ApssEngine, available_backends, reset_shared_pools
from repro.similarity.backends.sharded import STRAGGLER_ENV_VAR

#: Backends the registry must expose; a missing name means a backend module
#: failed to import or register, which CI should treat as a hard failure.
EXPECTED_BACKENDS = frozenset(
    {"exact-loop", "exact-blocked", "prefix-filter", "bayeslsh",
     "sharded-blocked"})

#: Candidate-generation strategies ``bayeslsh`` must declare through
#: ``parity_variants()`` — the banded column is how candidate-generation
#: regressions (a lost strategy, a renamed option) surface in ``--check``
#: before any benchmarking happens.
EXPECTED_BAYESLSH_STRATEGIES = ("all", "banded")


def check_registry() -> None:
    """Fail loudly when the backend registry lost a backend or strategy."""
    registered = set(available_backends())
    missing = EXPECTED_BACKENDS - registered
    if missing:
        raise SystemExit(
            f"APSS backend registry is missing {sorted(missing)} "
            f"(registered: {sorted(registered)}); a backend module failed "
            f"to import or register")
    from repro.similarity import get_backend_class

    strategies = tuple(options.get("candidate_strategy")
                       for options in
                       get_backend_class("bayeslsh").parity_variants())
    if strategies != EXPECTED_BAYESLSH_STRATEGIES:
        raise SystemExit(
            f"bayeslsh parity variants declare candidate strategies "
            f"{strategies}, expected {EXPECTED_BAYESLSH_STRATEGIES}; the "
            f"banded candidate path lost its registry seam")


#: Backend specs are either a registry name or ``(label, name, options)``;
#: labels keep the sharded worker-scaling rows distinguishable.
#: (workload name, dataset builder, measure, threshold, backend specs)
SMOKE_WORKLOADS = [
    ("dense-200x50-cosine",
     lambda: make_clustered_vectors(200, 50, 6, separation=4.0, seed=41,
                                    name="dense-200x50"),
     "cosine", 0.5,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("bayeslsh@all", "bayeslsh", {"candidate_strategy": "all"}),
      ("bayeslsh@banded", "bayeslsh", {"candidate_strategy": "banded"}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2})]),
    ("sparse-150x300-jaccard",
     lambda: make_sparse_corpus(150, 300, avg_doc_length=18, n_topics=5,
                                seed=43, name="sparse-150x300"),
     "jaccard", 0.3,
     ["exact-loop", "exact-blocked", "prefix-filter", "bayeslsh"]),
]

FULL_WORKLOADS = [
    # The headline workload: 2k x 200 dense cosine — blocked vs loop, plus
    # the sharded worker-count scaling ladder against exact-blocked.
    ("dense-2000x200-cosine",
     lambda: make_clustered_vectors(2000, 200, 10, separation=4.0, seed=47,
                                    name="dense-2000x200"),
     "cosine", 0.5,
     ["exact-loop", "exact-blocked",
      ("sharded@1w", "sharded-blocked", {"n_workers": 1}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2}),
      ("sharded@4w", "sharded-blocked", {"n_workers": 4})]),
    ("sparse-1500x2000-jaccard",
     lambda: make_sparse_corpus(1500, 2000, avg_doc_length=20, n_topics=12,
                                seed=49, name="sparse-1500x2000"),
     "jaccard", 0.4,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("sharded@4w", "sharded-blocked", {"n_workers": 4})]),
    ("dense-400x64-cosine-all-backends",
     lambda: make_clustered_vectors(400, 64, 8, separation=4.0, seed=51,
                                    name="dense-400x64"),
     "cosine", 0.6,
     ["exact-loop", "exact-blocked", "prefix-filter",
      ("bayeslsh@all", "bayeslsh", {"candidate_strategy": "all"}),
      ("bayeslsh@banded", "bayeslsh", {"candidate_strategy": "banded"}),
      ("sharded@2w", "sharded-blocked", {"n_workers": 2})]),
]


def _backend_spec(spec) -> tuple[str, str, dict]:
    """Normalise a backend spec into ``(label, registry name, options)``."""
    if isinstance(spec, str):
        return spec, spec, {}
    label, name, options = spec
    return label, name, dict(options)


def run_matrix(smoke: bool = True) -> list[dict]:
    """Run the workload matrix and return one row per (workload, backend)."""
    engine = ApssEngine()
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    rows: list[dict] = []
    for name, build, measure, threshold, backends in workloads:
        dataset = build()
        reference_count = None
        reference_seconds = None
        blocked_seconds = None
        for spec in backends:
            label, backend, options = _backend_spec(spec)
            result = engine.search(dataset, threshold, measure,
                                   backend=backend, **options)
            if backend == "exact-loop":
                reference_count = result.pair_count()
                reference_seconds = result.seconds
            if backend == "exact-blocked":
                blocked_seconds = result.seconds
            speedup = (reference_seconds / result.seconds
                       if reference_seconds and result.seconds > 0 else None)
            vs_blocked = (blocked_seconds / result.seconds
                          if blocked_seconds and result.seconds > 0 else None)
            rows.append({
                "workload": name,
                "n_rows": dataset.n_rows,
                "n_features": dataset.n_features,
                "measure": measure,
                "threshold": threshold,
                "backend": label,
                "n_workers": options.get("n_workers"),
                "candidate_strategy": options.get("candidate_strategy"),
                "exact": result.exact,
                "pairs": result.pair_count(),
                "reference_pairs": reference_count,
                "seconds": result.seconds,
                "speedup_vs_loop": speedup,
                "speedup_vs_blocked": vs_blocked,
            })
    return rows


def check_matrix(rows: list[dict]) -> None:
    """Assert the cross-backend invariants the matrix must uphold."""
    for row in rows:
        if row["exact"] and row["reference_pairs"] is not None:
            assert row["pairs"] == row["reference_pairs"], (
                f"{row['backend']} returned {row['pairs']} pairs on "
                f"{row['workload']}, exact-loop returned {row['reference_pairs']}")
        elif row["reference_pairs"]:
            # Approximate backends must land in the right ballpark.
            ratio = row["pairs"] / row["reference_pairs"]
            assert 0.5 < ratio < 1.5, (
                f"{row['backend']} count ratio {ratio:.2f} on {row['workload']}")


def format_table(rows: list[dict]) -> str:
    header = (f"{'workload':<28} {'backend':<14} {'pairs':>8} "
              f"{'seconds':>10} {'vs loop':>8} {'vs blocked':>11}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = (f"{row['speedup_vs_loop']:.1f}x"
                   if row["speedup_vs_loop"] else "-")
        vs_blocked = (f"{row['speedup_vs_blocked']:.2f}x"
                      if row.get("speedup_vs_blocked") else "-")
        lines.append(f"{row['workload']:<28} {row['backend']:<14} "
                     f"{row['pairs']:>8} {row['seconds']:>10.4f} "
                     f"{speedup:>8} {vs_blocked:>11}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Straggler scenario: work stealing vs static shard binding
# --------------------------------------------------------------------- #

#: Slowdown applied to worker slot 0 (via ``REPRO_APSS_STRAGGLER``): every
#: shard it computes takes 10x longer, the canonical "one bad core" case.
STRAGGLER_FACTOR = 10.0

#: Floor the stealing-vs-static speedup must clear with one worker slowed
#: ``STRAGGLER_FACTOR``x.  The ideal is ~(slots + factor - 1) / factor
#: (static waits for the straggler's whole stripe; stealing leaves it one
#: shard); 1.5x leaves generous headroom for scheduling overhead on small
#: CI machines.
STRAGGLER_MIN_SPEEDUP = 1.5


def _straggler_workload(smoke: bool):
    if smoke:
        return make_clustered_vectors(1000, 96, 8, separation=4.0, seed=53,
                                      name="straggler-1000x96"), 0.5
    return make_clustered_vectors(1600, 160, 10, separation=4.0, seed=53,
                                  name="straggler-1600x160"), 0.5


def run_straggler(smoke: bool = True, n_workers: int = 4,
                  repeats: int = 3) -> list[dict]:
    """Time static-bound vs stealing shard execution with a slowed worker.

    Worker slot 0 is slowed ``STRAGGLER_FACTOR``x through the
    ``REPRO_APSS_STRAGGLER`` hook (the sleep is proportional to each shard's
    measured kernel time, so the ratio is machine-free).  Static binding
    (``steal="bound"``: same queue, stealing off) must wait for the
    straggler's entire stripe; stealing redistributes it.  Both modes must
    return identical pairs; rows report per-mode seconds, the per-worker
    claim counters and the stealing row's ``speedup_vs_static``.
    """
    engine = ApssEngine()
    dataset, threshold = _straggler_workload(smoke)
    # Size blocks so the plan really has shards_per_worker shards per slot —
    # the default memory budget would fit the whole bench dataset in one
    # block, collapsing both modes to a single shard.  Fine shards (8 per
    # worker) keep the straggler's marginal claim cheap, which tightens the
    # run-to-run spread on small machines.
    shards_per_worker = 8
    options = dict(n_workers=n_workers, shards_per_worker=shards_per_worker,
                   block_rows=max(1, dataset.n_rows
                                  // (n_workers * shards_per_worker)))
    previous = os.environ.get(STRAGGLER_ENV_VAR)
    os.environ[STRAGGLER_ENV_VAR] = str(STRAGGLER_FACTOR)
    reset_shared_pools()
    try:
        # Warm the slowed pool and publish the dataset once, off the clock.
        engine.search(dataset, threshold, "cosine", backend="sharded-blocked",
                      steal=True, **options)
        rows = []
        reference_pairs = None
        static_seconds = None
        for label, steal in (("static-bound", "bound"), ("stealing", True)):
            best = None
            for _ in range(repeats):
                result = engine.search(dataset, threshold, "cosine",
                                       backend="sharded-blocked", steal=steal,
                                       **options)
                if best is None or result.seconds < best.seconds:
                    best = result
            pairs = [p.as_tuple() for p in best.pairs]
            if reference_pairs is None:
                reference_pairs = pairs
            assert pairs == reference_pairs, (
                f"{label} returned different pairs under the straggler")
            if label == "static-bound":
                static_seconds = best.seconds
            rows.append({
                "scenario": "straggler",
                "workload": dataset.name,
                "n_workers": n_workers,
                "n_shards": best.details["n_shards"],
                "straggler_factor": STRAGGLER_FACTOR,
                "mode": label,
                "steal": best.details["steal"],
                "claims": {str(slot): count for slot, count
                           in sorted(best.details["claims"].items())},
                "pairs": len(pairs),
                "seconds": best.seconds,
                "speedup_vs_static": (static_seconds / best.seconds
                                      if label == "stealing" else None),
            })
        return rows
    finally:
        if previous is None:
            os.environ.pop(STRAGGLER_ENV_VAR, None)
        else:
            os.environ[STRAGGLER_ENV_VAR] = previous
        reset_shared_pools()


def check_straggler(rows: list[dict]) -> None:
    """Assert stealing actually rescues the straggler workload."""
    by_mode = {row["mode"]: row for row in rows}
    stealing = by_mode["stealing"]
    static = by_mode["static-bound"]
    speedup = stealing["speedup_vs_static"]
    assert speedup is not None and speedup >= STRAGGLER_MIN_SPEEDUP, (
        f"stealing only {speedup:.2f}x faster than static binding with a "
        f"{STRAGGLER_FACTOR:g}x-slowed worker (static {static['seconds']:.3f}s,"
        f" stealing {stealing['seconds']:.3f}s); floor is "
        f"{STRAGGLER_MIN_SPEEDUP}x")
    # The straggler must visibly shed work to its peers.  Which queue slot
    # runs on the slowed *process* is the pool's choice, so the signature is
    # the redistribution itself: static binding claims exactly one stripe
    # per slot, stealing must end with somebody under it and somebody over.
    stripe = static["n_shards"] // static["n_workers"]
    assert all(count == stripe for count in static["claims"].values()), (
        f"static binding did not claim exact stripes: {static['claims']}")
    counts = stealing["claims"].values()
    assert min(counts) < stripe < max(counts), (
        f"stealing did not redistribute the straggler's stripe: "
        f"{stealing['claims']}")


def format_straggler_table(rows: list[dict]) -> str:
    header = (f"{'mode':<14} {'shards':>7} {'claims[0]':>10} "
              f"{'seconds':>10} {'vs static':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = (f"{row['speedup_vs_static']:.2f}x"
                   if row["speedup_vs_static"] else "-")
        lines.append(f"{row['mode']:<14} {row['n_shards']:>7} "
                     f"{row['claims']['0']:>10} {row['seconds']:>10.4f} "
                     f"{speedup:>10}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest-benchmark harness (smoke scale)
# --------------------------------------------------------------------- #

def test_apss_backend_matrix(benchmark, record):
    check_registry()
    rows = benchmark.pedantic(lambda: run_matrix(smoke=True),
                              rounds=1, iterations=1)
    record("apss_backend_matrix_smoke", rows)
    check_matrix(rows)

    by_backend = {(r["workload"], r["backend"]): r for r in rows}
    for workload, *_ in [(w[0],) for w in SMOKE_WORKLOADS]:
        loop = by_backend[(workload, "exact-loop")]
        blocked = by_backend[(workload, "exact-blocked")]
        # The vectorised kernel must be decisively faster than the loop even
        # at smoke scale (the full 2000x200 workload shows >=10x).
        assert blocked["seconds"] * 5 < loop["seconds"], (
            f"exact-blocked only {loop['seconds'] / blocked['seconds']:.1f}x "
            f"faster on {workload}")


def test_straggler_stealing_beats_static_binding(record):
    """Smoke-scale straggler scenario: stealing must rescue a slowed worker."""
    rows = run_straggler(smoke=True)
    record("straggler_smoke", rows)
    check_straggler(rows)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def json_payload(rows: list[dict], smoke: bool) -> dict:
    """The machine-readable benchmark payload ``--json`` writes.

    One dict per (workload, backend) row — per-backend ``seconds``,
    ``speedup_vs_loop``/``speedup_vs_blocked`` and ``n_workers`` — plus
    enough run metadata to compare artifacts across CI runs.
    """
    return {
        "benchmark": "apss_backend_matrix",
        "smoke": bool(smoke),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backends": sorted(available_backends()),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI-sized matrix")
    parser.add_argument("--check", action="store_true",
                        help="only verify the backend registry roster "
                             "(fails fast on import/registration errors)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the matrix rows as machine-readable "
                             "JSON to PATH (uploaded as a CI artifact)")
    parser.add_argument("--straggler", action="store_true",
                        help="run the straggler scenario instead of the "
                             "matrix: one worker slowed 10x, stealing vs "
                             "static shard binding")
    args = parser.parse_args(argv)

    check_registry()
    if args.check:
        print(f"backend registry ok: {sorted(available_backends())}")
        return 0

    from conftest import record_result

    suffix = "_smoke" if args.smoke else ""
    if args.straggler:
        rows = run_straggler(smoke=args.smoke)
        print(format_straggler_table(rows))
        check_straggler(rows)
        path = record_result(f"straggler{suffix}", rows)
        print(f"\nresults written to {path}")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(rows, handle, indent=2, default=float)
            print(f"machine-readable straggler rows written to {args.json}")
        return 0

    rows = run_matrix(smoke=args.smoke)
    check_matrix(rows)
    print(format_table(rows))

    path = record_result(f"apss_backend_matrix{suffix}", rows)
    print(f"\nresults written to {path}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(json_payload(rows, smoke=args.smoke), handle, indent=2,
                      default=float)
        print(f"machine-readable matrix written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
