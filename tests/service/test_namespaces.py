"""Per-tenant namespaces: one store, disjoint key spaces, scoped snapshots."""

from __future__ import annotations

import pytest

from repro.datasets import make_clustered_vectors
from repro.service import StoreNamespace
from repro.similarity import ApssEngine
from repro.store import SimilarityStore


def _floor(threshold: float = 0.5):
    dataset = make_clustered_vectors(12, 8, 2, seed=3)
    return dataset, ApssEngine().search(dataset, threshold)


def test_tenants_see_disjoint_entries(tmp_path):
    store = SimilarityStore(tmp_path)
    alice = StoreNamespace(store, "alice")
    bob = StoreNamespace(store, "bob")
    dataset, result = _floor()
    key = (dataset.fingerprint(), "cosine")

    assert alice.land_result(key, result)
    assert alice.load_result(key) is not None
    assert bob.load_result(key) is None          # other tenant: invisible
    assert store.load_result(key) is None        # bare store: invisible too

    assert bob.land_result(key, result)          # lands independently
    assert bob.load_result(key) is not None


def test_namespaced_key_and_fingerprint_rewrite(tmp_path):
    ns = StoreNamespace(SimilarityStore(tmp_path), "alice")
    assert ns.namespaced(("fp", "cosine", None)) == ("alice::fp", "cosine",
                                                     None)
    assert ns.namespaced_fingerprint("fp") == "alice::fp"
    with pytest.raises(ValueError):
        ns.namespaced(())


@pytest.mark.parametrize("bad", ["", "a::b", None, 7])
def test_invalid_tenant_ids_are_refused(tmp_path, bad):
    store = SimilarityStore(tmp_path)
    with pytest.raises(ValueError):
        StoreNamespace(store, bad)


def test_manifest_generations_are_tenant_scoped(tmp_path):
    store = SimilarityStore(tmp_path)
    alice = StoreNamespace(store, "alice")
    bob = StoreNamespace(store, "bob")
    alice.publish_generation("fp-1", parent=None, n_rows=10)
    bob.publish_generation("fp-2", parent="fp-1", n_rows=12, parent_rows=10)

    manifest = store.manifest()
    names = {g.fingerprint for g in manifest.generations}
    assert names == {"alice::fp-1", "bob::fp-2", "bob::fp-1"}
    # Bob's parent link stayed inside bob's namespace.
    assert manifest.generation("bob::fp-2").parent == "bob::fp-1"

    with alice.open_snapshot() as snap:
        assert snap.fingerprints() == ["fp-1"]
        assert snap.generation("fp-1").n_rows == 10
        assert snap.generation("fp-2") is None
    with bob.open_snapshot() as snap:
        assert sorted(snap.fingerprints()) == ["fp-1", "fp-2"]


def test_publish_floor_lands_in_the_tenant_lineage(tmp_path):
    store = SimilarityStore(tmp_path)
    alice = StoreNamespace(store, "alice")
    dataset, result = _floor()
    key = (dataset.fingerprint(), "cosine")
    alice.publish_floor(key, result)

    with alice.open_snapshot() as snap:
        assert snap.fingerprints() == [dataset.fingerprint()]
        restored = snap.load_result(key)
        assert restored is not None
        assert restored.pair_set() == result.pair_set()
    # The raw manifest only knows the namespaced fingerprint.
    assert store.manifest().generation(dataset.fingerprint()) is None


def test_snapshot_is_scoped_but_shares_the_store_version(tmp_path):
    store = SimilarityStore(tmp_path)
    alice = StoreNamespace(store, "alice")
    alice.publish_generation("fp", parent=None, n_rows=4)
    with alice.open_snapshot() as snap:
        assert snap.pinned
        assert snap.version == store.manifest().version
        assert snap.store is alice  # writes through the snapshot stay scoped


def test_session_and_sketch_entries_are_scoped(tmp_path):
    store = SimilarityStore(tmp_path)
    alice = StoreNamespace(store, "alice")
    bob = StoreNamespace(store, "bob")
    import numpy as np

    alice.save_sketches(("fp", 128, 0), np.arange(6).reshape(2, 3))
    assert alice.load_sketches(("fp", 128, 0)) is not None
    assert bob.load_sketches(("fp", 128, 0)) is None

    alice.save_session(("plasma-session", "fp", "cosine"), {"n_probes": 3})
    assert alice.load_session(("plasma-session", "fp", "cosine")) is not None
    assert bob.load_session(("plasma-session", "fp", "cosine")) is None

    alice.delete("sketches", ("fp", 128, 0))
    assert alice.load_sketches(("fp", 128, 0)) is None
