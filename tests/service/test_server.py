"""The session server: coalescing end-to-end, lifecycle, health, tenancy."""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets import make_clustered_vectors
from repro.service import ServiceClosedError, SimilarityService


def _dataset(seed: int = 13, n_rows: int = 14):
    return make_clustered_vectors(n_rows, 8, 2, seed=seed)


def _gate_owner(service, joiners: int):
    """Stall the owner's kernel pass until *joiners* threads joined it."""
    real_search = service.compute.search

    def gated(*args, **kwargs):
        deadline = time.monotonic() + 10.0
        while service.scheduler.coalesced < joiners:
            assert time.monotonic() < deadline, "joiners never arrived"
            time.sleep(0.001)
        return real_search(*args, **kwargs)

    service.compute.search = gated


# --------------------------------------------------------------------- #
# Coalescing, across tenants
# --------------------------------------------------------------------- #

def test_concurrent_sweeps_across_tenants_share_one_kernel_pass(tmp_path):
    """The acceptance audit: N concurrent identical probes, one search call."""
    dataset = _dataset()
    # Lane width >= thread count: a joiner parks on the shared flight while
    # holding its probe slot, so the gate must admit every concurrent caller
    # for all of them to join one pass.
    with SimilarityService(tmp_path / "store", probe_slots=8) as service:
        tenants = ["alice", "bob", "carol", "dave"]
        sessions = [service.open_session(t) for t in tenants]
        _gate_owner(service, joiners=len(sessions) - 1)
        results = [None] * len(sessions)
        start = threading.Barrier(len(sessions))

        def worker(i):
            start.wait()
            results[i] = sessions[i].sweep(dataset, 0.5)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(sessions))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert service.engine.search_calls == 1
        assert service.scheduler.kernel_passes == 1
        assert service.scheduler.coalesced == len(sessions) - 1
        reference = results[0].pair_set()
        assert all(r.pair_set() == reference for r in results)
        # Every tenant still got its own durable floor.
        for session in sessions:
            key = service.compute.cache_key(dataset.fingerprint(), "cosine")
            assert session.namespace.load_result(key) is not None


def test_concurrent_tiered_probes_coalesce_to_one_sketch_pass(tmp_path):
    dataset = _dataset()
    with SimilarityService(tmp_path / "store", refine="off",
                           probe_slots=8) as service:
        sessions = [service.open_session(t) for t in ("a", "b", "c")]
        real_probe = service.tiered.probe

        def gated(*args, **kwargs):
            deadline = time.monotonic() + 10.0
            while service.scheduler.coalesced < len(sessions) - 1:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            return real_probe(*args, **kwargs)

        service.tiered.probe = gated
        answers = [None] * len(sessions)
        start = threading.Barrier(len(sessions))

        def worker(i):
            start.wait()
            answers[i] = sessions[i].probe(dataset, 0.5)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(sessions))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert service.engine.search_calls == 1  # one sketch pass, shared
        assert all(a.tier == "sketch" for a in answers)
        assert all(a.result is answers[0].result for a in answers)


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #

def test_lifecycle_serving_draining_closed(tmp_path):
    service = SimilarityService(tmp_path / "store")
    assert service.state == "serving"
    session = service.open_session("tenant")
    answer = session.probe(_dataset(), 0.5)
    assert answer.tier == "sketch"

    assert service.drain(timeout=10.0)
    assert service.state == "draining"
    with pytest.raises(ServiceClosedError):
        service.open_session("late")
    with pytest.raises(ServiceClosedError):
        session.sweep(_dataset(), 0.5)
    # Draining waited for the queued refinement to land.
    assert service.health()["pending_refinements"] == 0

    service.close()
    assert service.state == "closed"
    service.close()  # idempotent
    assert service.tiered.closed
    assert session.closed  # close() swept the open sessions along


def test_closed_service_refuses_everything(tmp_path):
    service = SimilarityService(tmp_path / "store")
    session = service.open_session("tenant")
    service.close()
    for call in (lambda: service.open_session("x"),
                 lambda: session.sweep(_dataset(), 0.5),
                 lambda: session.probe(_dataset(), 0.5),
                 lambda: session.top_k_join(_dataset(), 5, 0.5),
                 lambda: session.ingest(_dataset(),
                                        _dataset(seed=1, n_rows=2)),
                 lambda: session.open_plasma(_dataset())):
        with pytest.raises(ServiceClosedError):
            call()


def test_sessions_deregister_and_tenancy_is_shared(tmp_path):
    with SimilarityService(tmp_path / "store") as service:
        a1 = service.open_session("alice")
        a2 = service.open_session("alice")
        assert service.sessions == 2
        # Two handles, one tenant: same namespace slice.
        assert a1.namespace.tenant == a2.namespace.tenant == "alice"
        a1.close()
        a1.close()  # idempotent
        assert service.sessions == 1
        with pytest.raises(ServiceClosedError):
            a1.sweep(_dataset(), 0.5)
        assert a2.sweep(_dataset(), 0.5).exact  # survivor unaffected


def test_health_snapshot_shape(tmp_path):
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("tenant")
        session.sweep(_dataset(), 0.5)
        health = service.health()
    assert health["state"] == "serving"
    assert health["sessions"] == 1
    assert health["kernel_passes"] == 1
    assert health["search_calls"] == 1
    assert health["inflight"] == 0
    assert health["pending_refinements"] == 0
    assert set(health["lanes"]) == {"probe", "ingest"}
    assert health["lanes"]["probe"]["admitted"] == 1


def test_storeless_service_serves_without_namespaces():
    with SimilarityService() as service:
        session = service.open_session("tenant")
        assert session.namespace is None
        assert session.sweep(_dataset(), 0.5).exact
        assert session.probe(_dataset(), 0.4).tier in ("sketch", "exact")
        child = session.ingest(_dataset(), _dataset(seed=2, n_rows=2))
        assert child.n_rows == 16


def test_ingest_publishes_the_tenant_generation(tmp_path):
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("alice")
        parent = _dataset()
        child = session.ingest(parent, _dataset(seed=2, n_rows=2))
        with session.namespace.open_snapshot() as snap:
            fingerprints = snap.fingerprints()
            assert child.fingerprint() in fingerprints
            assert parent.fingerprint() in fingerprints
            record = snap.generation(child.fingerprint())
            assert record.parent == session.namespace.namespaced_fingerprint(
                parent.fingerprint())


def test_open_plasma_shares_engine_and_tenant_store(tmp_path):
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("alice")
        plasma = session.open_plasma(_dataset())
        assert plasma.engine is service.engine
        plasma.probe(0.5)  # probing persists the session state
        plasma.close()
        # The saved state landed inside alice's namespace: a second alice
        # session resumes warm, a bob session over the same data starts
        # cold.
        again = session.open_plasma(_dataset())
        assert again.resumed_from == "store"
        again.close()
        bob = service.open_session("bob").open_plasma(_dataset())
        assert bob.resumed_from == "fresh"
        bob.close()


# --------------------------------------------------------------------- #
# Top-k join: compressed floors in, ranked pairs out
# --------------------------------------------------------------------- #

def _clustered(n_rows: int = 400, seed: int = 29):
    return make_clustered_vectors(n_rows, 12, 6, separation=6.0,
                                  cluster_std=0.6, seed=seed)


def _raw_reducer_pairs(result, k: int):
    """The reference answer: a TopKReducer pass over the raw floor."""
    import numpy as np

    from repro.similarity.streaming import TopKReducer

    reducer = TopKReducer(k)
    reducer.update(
        np.array([p.first for p in result.pairs], dtype=np.int64),
        np.array([p.second for p in result.pairs], dtype=np.int64),
        np.array([p.similarity for p in result.pairs]))
    return [(p.first, p.second, p.similarity) for p in reducer.pairs()]


def test_top_k_join_matches_a_raw_floor_reducer_pass(tmp_path):
    dataset = _clustered()
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("alice")
        raw = session.sweep(dataset, 0.6)
        joined = session.top_k_join(dataset, 25, 0.6)
        assert joined.source == "store-factorized"
        assert joined.floor_pairs == len(raw.pairs)
        assert [(p.first, p.second, p.similarity) for p in joined.pairs] \
            == _raw_reducer_pairs(raw, 25)
        assert service.engine.search_calls == 1  # the sweep; join was free


def test_top_k_join_computes_then_serves_from_the_store(tmp_path):
    dataset = _clustered(seed=31)
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("alice")
        first = session.top_k_join(dataset, 10, 0.6)
        assert first.source == "kernel"
        assert service.engine.search_calls == 1
        again = session.top_k_join(dataset, 10, 0.6)
        assert again.source == "store-factorized"
        assert service.engine.search_calls == 1  # zero extra kernel work
        assert again.pairs == first.pairs
        # A higher threshold is still covered by the landed floor.
        higher = session.top_k_join(dataset, 10, 0.8)
        assert higher.source == "store-factorized"
        assert service.engine.search_calls == 1
        assert all(p.similarity >= 0.8 for p in higher.pairs)


def test_top_k_join_small_floor_is_served_raw(tmp_path):
    dataset = _dataset()  # far below the factorisation floor
    with SimilarityService(tmp_path / "store") as service:
        session = service.open_session("alice")
        first = session.top_k_join(dataset, 5, 0.5)
        assert first.source == "kernel"
        again = session.top_k_join(dataset, 5, 0.5)
        assert again.source == "store-raw"
        assert again.pairs == first.pairs


def test_top_k_join_works_storeless():
    dataset = _dataset()
    with SimilarityService() as service:
        session = service.open_session("tenant")
        raw = session.sweep(dataset, 0.5)
        joined = session.top_k_join(dataset, 5, 0.5)
        assert joined.source == "kernel"
        assert [(p.first, p.second, p.similarity) for p in joined.pairs] \
            == _raw_reducer_pairs(raw, 5)


def test_health_reports_store_stats(tmp_path):
    dataset = _clustered(seed=37)
    with SimilarityService(tmp_path / "store") as service:
        service.open_session("alice").sweep(dataset, 0.6)
        stats = service.health()["store"]
        assert stats["entries"] >= 1
        assert stats["kinds"]["pairs-factorized"]["entries"] == 1
    with SimilarityService() as storeless:
        assert storeless.health()["store"] is None
