"""Request coalescing: concurrent identical sweeps share one kernel pass.

The audit is :attr:`ApssEngine.search_calls` — the acceptance criterion is
that N concurrent identical probes bump it exactly once.  Concurrency is
made deterministic by gating the owner's compute on the scheduler's own
``coalesced`` counter: the kernel pass does not finish until every other
thread has demonstrably joined the flight.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets import make_clustered_vectors
from repro.service import CoalescingScheduler
from repro.similarity import ApssEngine, CachedApssEngine


def _scheduler():
    engine = ApssEngine()
    cache = CachedApssEngine(engine=engine, store=False)
    return engine, cache, CoalescingScheduler(cache)


def _dataset(seed: int = 7, n_rows: int = 16):
    return make_clustered_vectors(n_rows, 8, 2, seed=seed)


def _gate_owner(scheduler, cache, joiners: int):
    """Make the owner's kernel pass wait until *joiners* threads joined."""
    real_search = cache.search

    def gated(*args, **kwargs):
        deadline = time.monotonic() + 10.0
        while scheduler.coalesced < joiners:
            assert time.monotonic() < deadline, "joiners never arrived"
            time.sleep(0.001)
        return real_search(*args, **kwargs)

    cache.search = gated


def test_concurrent_identical_sweeps_run_one_kernel_pass():
    engine, cache, scheduler = _scheduler()
    dataset = _dataset()
    n_threads = 6
    _gate_owner(scheduler, cache, joiners=n_threads - 1)

    results = [None] * n_threads
    start = threading.Barrier(n_threads)

    def worker(i):
        start.wait()
        results[i] = scheduler.search(dataset, 0.5)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert engine.search_calls == 1  # the acceptance audit
    assert scheduler.kernel_passes == 1
    assert scheduler.coalesced == n_threads - 1
    assert len(scheduler) == 0  # no leaked flights
    reference = results[0].pair_set()
    assert all(r.pair_set() == reference for r in results)


def test_audit_counters_lose_no_updates_under_concurrency():
    """kernel_passes + coalesced must equal total requests, exactly.

    Both counters move under the scheduler lock; lost updates from
    unsynchronised increments would skew the audit that health() and the
    service benchmarks report.  Hammer coalesce() from many threads over
    many rounds and check the conservation law.
    """
    _, _, scheduler = _scheduler()
    n_threads, n_rounds = 8, 50
    barriers = [threading.Barrier(n_threads) for _ in range(n_rounds)]

    def worker():
        for round_no in range(n_rounds):
            barriers[round_no].wait()
            scheduler.coalesce(("key", round_no), lambda: round_no)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    total = n_threads * n_rounds
    assert scheduler.kernel_passes + scheduler.coalesced == total
    assert scheduler.kernel_passes >= n_rounds  # one owner per round minimum
    assert len(scheduler) == 0


def test_sequential_repeat_is_served_by_the_sweep_cache():
    engine, cache, scheduler = _scheduler()
    dataset = _dataset()
    first = scheduler.search(dataset, 0.5)
    second = scheduler.search(dataset, 0.5)
    assert engine.search_calls == 1
    assert second.pair_set() == first.pair_set()
    # Both passes were owner-computed (the second via the cache floor):
    # coalescing only fires on *concurrent* duplicates.
    assert scheduler.kernel_passes == 2
    assert scheduler.coalesced == 0


def test_distinct_thresholds_are_independent_flights():
    engine, cache, scheduler = _scheduler()
    dataset = _dataset()
    assert (scheduler.request_key(dataset, 0.5)
            != scheduler.request_key(dataset, 0.7))
    scheduler.search(dataset, 0.5)
    scheduler.search(dataset, 0.7)
    assert scheduler.kernel_passes == 2
    # ...but the tighter threshold was served from the looser floor.
    assert engine.search_calls == 1


def test_failure_propagates_to_owner_and_every_joiner():
    _, cache, scheduler = _scheduler()
    key = ("boom",)
    n_joiners = 3
    failures: list[BaseException] = []
    lock = threading.Lock()

    def compute():
        deadline = time.monotonic() + 10.0
        while scheduler.coalesced < n_joiners:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        raise ValueError("kernel exploded")

    def call():
        try:
            scheduler.coalesce(key, compute)
        except ValueError as exc:
            with lock:
                failures.append(exc)

    threads = [threading.Thread(target=call) for _ in range(n_joiners + 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(failures) == n_joiners + 1
    assert len(scheduler) == 0  # the failed flight was removed


def test_flight_is_removed_before_the_result_publishes():
    _, cache, scheduler = _scheduler()
    assert scheduler.coalesce(("k",), lambda: 41) == 41
    # A later request for the same key starts a fresh flight (and here a
    # fresh compute — in the real path the sweep cache absorbs it).
    assert scheduler.coalesce(("k",), lambda: 42) == 42
    assert scheduler.kernel_passes == 2


def test_request_key_strips_nothing_the_cache_key_keeps():
    _, cache, scheduler = _scheduler()
    dataset = _dataset()
    key = scheduler.request_key(dataset, 0.5, "cosine")
    assert key[:-1] == cache.cache_key(dataset.fingerprint(), "cosine")
    assert key[-1] == pytest.approx(0.5)
