"""Admission control: bounded lanes, shed-on-overload, writer/probe isolation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets import make_clustered_vectors
from repro.service import (AdmissionController, LaneGate,
                           ServiceOverloadError, SimilarityService)


# --------------------------------------------------------------------- #
# LaneGate mechanics
# --------------------------------------------------------------------- #

def test_full_lane_with_full_queue_sheds_immediately():
    gate = LaneGate("probe", max_concurrent=1, max_queued=0)
    gate.acquire()
    started = time.monotonic()
    with pytest.raises(ServiceOverloadError):
        gate.acquire()
    assert time.monotonic() - started < 1.0  # shed, not queued
    assert gate.stats()["shed"] == 1
    gate.release()


def test_queued_caller_is_admitted_on_release():
    gate = LaneGate("probe", max_concurrent=1, max_queued=1)
    gate.acquire()
    admitted = threading.Event()

    def waiter():
        with gate.admit(timeout=10.0):
            admitted.set()

    t = threading.Thread(target=waiter)
    t.start()
    deadline = time.monotonic() + 5.0
    while gate.stats()["queued"] != 1:
        assert time.monotonic() < deadline
        time.sleep(0.001)
    assert not admitted.is_set()
    gate.release()
    t.join(timeout=5.0)
    assert admitted.is_set()
    assert gate.stats() == {"active": 0, "queued": 0, "admitted": 2,
                            "shed": 0, "max_concurrent": 1, "max_queued": 1}


def test_queue_timeout_sheds():
    gate = LaneGate("probe", max_concurrent=1, max_queued=1)
    gate.acquire()
    with pytest.raises(ServiceOverloadError):
        gate.acquire(timeout=0.05)
    gate.release()


def test_admit_releases_on_exception():
    gate = LaneGate("probe", max_concurrent=1, max_queued=0)
    with pytest.raises(RuntimeError):
        with gate.admit():
            raise RuntimeError("body failed")
    assert gate.stats()["active"] == 0


def test_drain_waits_for_the_lane_to_empty():
    gate = LaneGate("probe", max_concurrent=2, max_queued=0)
    gate.acquire()
    assert not gate.drain(timeout=0.05)
    gate.release()
    assert gate.drain(timeout=1.0)


def test_release_wakes_queued_acquirer_despite_drain_waiter():
    """Regression: release() must wake *all* condition waiters.

    The condition is shared by queued acquirers and drain() waiters.  A
    single notify could hand the wakeup to the drain waiter, whose
    predicate (lane empty) is still false while a request is queued — it
    would re-wait, and the queued acquirer (waiting with no timeout, the
    ServiceSession default) would block forever, hanging shutdown.
    """
    gate = LaneGate("probe", max_concurrent=1, max_queued=1)
    gate.acquire()
    admitted = threading.Event()

    def waiter():
        with gate.admit():  # timeout=None — the forever-blocked path
            admitted.set()

    t = threading.Thread(target=waiter, daemon=True)
    t.start()
    deadline = time.monotonic() + 5.0
    while gate.stats()["queued"] != 1:
        assert time.monotonic() < deadline
        time.sleep(0.001)

    drained = []
    d = threading.Thread(target=lambda: drained.append(gate.drain(timeout=5.0)),
                         daemon=True)
    d.start()
    time.sleep(0.05)  # let drain() park on the shared condition
    gate.release()
    t.join(timeout=5.0)
    assert admitted.is_set(), "queued acquirer lost the wakeup to drain()"
    d.join(timeout=10.0)
    assert drained == [True]


def test_drain_completes_whether_waiter_is_served_or_shed():
    """A bounded drain must see the lane empty on both waiter exits.

    Covers the shed path too: when the last queued waiter times out, its
    departure (queued -> 0) must notify the drain waiter, or drain()
    misses the lane becoming empty and times out spuriously.
    """
    for release_delay in (0.0, 0.05, 0.3):
        gate = LaneGate("probe", max_concurrent=1, max_queued=1)
        gate.acquire()

        def waiter():
            try:
                with gate.admit(timeout=0.1):
                    pass
            except ServiceOverloadError:
                pass  # shed by timeout — equally valid exit

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while gate.stats()["queued"] != 1 and t.is_alive():
            assert time.monotonic() < deadline
            time.sleep(0.001)

        drained = []
        d = threading.Thread(
            target=lambda: drained.append(gate.drain(timeout=5.0)),
            daemon=True)
        d.start()
        time.sleep(release_delay)
        gate.release()
        t.join(timeout=10.0)
        d.join(timeout=10.0)
        assert drained == [True], f"drain timed out (delay={release_delay})"
        assert gate.stats()["active"] == 0
        assert gate.stats()["queued"] == 0


def test_gate_validation():
    with pytest.raises(ValueError):
        LaneGate("x", max_concurrent=0)
    with pytest.raises(ValueError):
        LaneGate("x", max_concurrent=1, max_queued=-1)
    gate = LaneGate("x", max_concurrent=1)
    with pytest.raises(RuntimeError):
        gate.release()  # released more than acquired


def test_controller_defaults_queue_to_twice_the_slots():
    ctrl = AdmissionController(probe_slots=4, ingest_slots=2)
    assert ctrl.probe.max_queued == 8
    assert ctrl.ingest.max_queued == 4
    stats = ctrl.stats()
    assert set(stats) == {"probe", "ingest"}


# --------------------------------------------------------------------- #
# Lane isolation at the service level
# --------------------------------------------------------------------- #

def _dataset(seed=5, n_rows=10):
    return make_clustered_vectors(n_rows, 8, 2, seed=seed)


def test_saturated_probe_lane_never_blocks_ingest(tmp_path):
    """Writer/sweeper isolation: a stuck probe lane still admits appends."""
    with SimilarityService(tmp_path / "store") as service:
        # One probe slot, no queue: the second probe sheds instantly.
        service.admission = AdmissionController(
            probe_slots=1, ingest_slots=1, probe_queue=0)
        session = service.open_session("tenant")
        release = threading.Event()
        in_probe = threading.Event()
        real_search = service.compute.search

        def stuck_search(*args, **kwargs):
            in_probe.set()
            assert release.wait(timeout=10.0)
            return real_search(*args, **kwargs)

        service.compute.search = stuck_search
        probe_thread = threading.Thread(
            target=lambda: session.sweep(_dataset(), 0.5))
        probe_thread.start()
        assert in_probe.wait(timeout=10.0)

        # The probe lane is saturated: another probe is shed...
        with pytest.raises(ServiceOverloadError):
            session.sweep(_dataset(seed=6), 0.5)
        # ...but ingest sails through on its own lane, un-queued.
        started = time.monotonic()
        child = session.ingest(_dataset(), _dataset(seed=9, n_rows=2))
        assert time.monotonic() - started < 5.0
        assert child.n_rows == 12

        release.set()
        probe_thread.join(timeout=10.0)
        assert service.admission.probe.stats()["active"] == 0


def test_saturated_ingest_lane_never_blocks_probes(tmp_path):
    """The symmetric direction: stuck appends still admit sweeps."""
    with SimilarityService(tmp_path / "store") as service:
        service.admission = AdmissionController(
            probe_slots=4, ingest_slots=1, ingest_queue=0)
        session = service.open_session("tenant")
        release = threading.Event()
        in_ingest = threading.Event()
        dataset = _dataset()
        real_append = type(dataset).append_rows

        def stuck_append(self, rows, labels=None, name=None):
            in_ingest.set()
            assert release.wait(timeout=10.0)
            return real_append(self, rows, labels=labels, name=name)

        ingest_thread = threading.Thread(
            target=lambda: session.ingest(dataset,
                                          _dataset(seed=9, n_rows=2)))
        try:
            type(dataset).append_rows = stuck_append
            ingest_thread.start()
            assert in_ingest.wait(timeout=10.0)

            with pytest.raises(ServiceOverloadError):
                session.ingest(dataset, _dataset(seed=10, n_rows=2))
            result = session.sweep(dataset, 0.5)  # probe lane: untouched
            assert result.exact
        finally:
            release.set()
            ingest_thread.join(timeout=10.0)
            type(dataset).append_rows = real_append
