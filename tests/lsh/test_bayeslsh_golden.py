"""Golden regression tests pinning BayesLSH behaviour on fixed-seed data.

The engine refactor routes every BayesLSH run through
``repro.similarity.backends.bayeslsh``; these tests pin the pruning
statistics, recall and estimate concordance of fixed-seed runs so any later
rewiring that silently changes the Bayesian prune/concentrate behaviour
(different hash budgets, candidate order, posterior handling, ...) fails
loudly here rather than drifting the Chapter 2 experiments.

The pinned integers were produced by the seed implementation (pre-engine)
and verified unchanged through the backend path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors, make_sparse_corpus
from repro.lsh.bayeslsh import BayesLSH, BayesLSHConfig
from repro.lsh.candidates import all_pair_candidates
from repro.lsh.sketches import build_sketch_store
from repro.similarity import apss_search


@pytest.fixture(scope="module")
def golden_dataset():
    return make_clustered_vectors(80, 10, 4, separation=5.0, cluster_std=0.8,
                                  seed=29, name="golden")


@pytest.fixture(scope="module")
def golden_run(golden_dataset):
    store = build_sketch_store(golden_dataset, kind="cosine", n_hashes=128,
                               seed=0)
    verifier = BayesLSH(store, BayesLSHConfig(max_hashes=128))
    return verifier.run(list(all_pair_candidates(80)), 0.7)


def test_golden_cosine_pruning_statistics(golden_run):
    assert golden_run.n_candidates == 3160
    assert golden_run.n_retained == 754
    assert golden_run.n_pruned == 2384
    assert golden_run.hash_comparisons == 143616
    outcomes = {}
    for evaluation in golden_run.evaluations:
        outcomes[evaluation.outcome] = outcomes.get(evaluation.outcome, 0) + 1
    assert outcomes == {"pruned": 2384, "concentrated": 391, "exhausted": 385}


def test_golden_cosine_recall_and_concordance(golden_dataset, golden_run):
    exact = apss_search(golden_dataset, 0.7, "cosine", backend="exact-loop")
    exact_pairs = exact.pair_set()
    retained = {(p.first, p.second) for p in golden_run.pairs}

    recall = len(retained & exact_pairs) / len(exact_pairs)
    precision = len(retained & exact_pairs) / len(retained)
    assert recall == pytest.approx(0.985545, abs=1e-6)
    assert precision == pytest.approx(0.994695, abs=1e-6)

    # Concordance: MAP estimates track the exact similarities closely on the
    # true pair set.
    all_sims = apss_search(golden_dataset, -2.0, "cosine",
                           backend="exact-loop").similarities()
    estimates = {(e.first, e.second): e.estimate
                 for e in golden_run.evaluations}
    errors = [abs(estimates[p] - all_sims[p]) for p in exact_pairs]
    assert np.mean(errors) == pytest.approx(0.022140, abs=1e-6)
    assert np.max(errors) == pytest.approx(0.288899, abs=1e-6)


def test_golden_cosine_backend_path_identical(golden_dataset, golden_run):
    """The engine's bayeslsh backend must reproduce the direct run exactly."""
    result = apss_search(golden_dataset, 0.7, "cosine", backend="bayeslsh",
                         n_hashes=128, seed=0)
    assert result.pair_count() == golden_run.n_retained
    assert result.n_pruned == golden_run.n_pruned
    assert result.details["hash_comparisons"] == golden_run.hash_comparisons
    assert result.pair_set() == {(p.first, p.second) for p in golden_run.pairs}


def test_golden_jaccard_backend_regression():
    corpus = make_sparse_corpus(60, 300, avg_doc_length=20, n_topics=5,
                                seed=33, name="golden-corpus")
    result = apss_search(corpus, 0.2, "jaccard", backend="bayeslsh",
                         n_hashes=128, seed=0)
    exact = apss_search(corpus, 0.2, "jaccard", backend="exact-loop")

    assert result.pair_count() == 211
    assert result.n_pruned == 1455
    assert result.details["hash_comparisons"] == 78256
    overlap = result.pair_set() & exact.pair_set()
    assert len(overlap) / exact.pair_count() == pytest.approx(0.873171,
                                                              abs=1e-6)
