"""Tests for the BayesLSH all-pairs engine."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.lsh import (
    BayesLSH,
    BayesLSHConfig,
    all_pair_candidates,
    build_sketch_store,
)
from repro.similarity import exact_pair_count, pairwise_similarity_matrix


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(80, 8, 4, separation=5.0, cluster_std=0.7, seed=21)


@pytest.fixture(scope="module")
def store(dataset):
    return build_sketch_store(dataset, kind="cosine", n_hashes=256, seed=1)


def test_config_validation():
    with pytest.raises(ValueError):
        BayesLSHConfig(epsilon=0.0)
    with pytest.raises(ValueError):
        BayesLSHConfig(hash_batch=0)
    with pytest.raises(ValueError):
        BayesLSHConfig(hash_batch=64, max_hashes=32)


def test_evaluate_pair_identical_rows(store):
    engine = BayesLSH(store)
    evaluation = engine.evaluate_pair(0, 0, 0.9)
    assert evaluation.retained
    assert evaluation.estimate == pytest.approx(1.0, abs=0.05)
    assert evaluation.outcome in ("concentrated", "exhausted")


def test_evaluate_pair_prunes_dissimilar(dataset, store):
    sims = pairwise_similarity_matrix(dataset)
    i, j = np.unravel_index(np.argmin(sims), sims.shape)
    engine = BayesLSH(store)
    evaluation = engine.evaluate_pair(int(i), int(j), 0.95)
    assert not evaluation.retained
    assert evaluation.outcome == "pruned"
    # Pruning should use far fewer hashes than the full sketch.
    assert evaluation.n_hashes < store.n_hashes


def test_run_counts_and_recall(dataset, store):
    threshold = 0.9
    engine = BayesLSH(store, BayesLSHConfig(max_hashes=256))
    result = engine.run(all_pair_candidates(dataset.n_rows), threshold)
    exact = exact_pair_count(dataset, [threshold])[threshold]
    assert result.n_candidates == dataset.n_rows * (dataset.n_rows - 1) // 2
    assert result.n_retained == pytest.approx(exact, rel=0.2)
    assert result.n_pruned > 0
    assert result.hash_comparisons > 0


def test_false_negative_rate_within_slack(dataset, store):
    """Pairs well above the threshold are almost never pruned (Eq. 2.1)."""
    threshold = 0.8
    sims = pairwise_similarity_matrix(dataset)
    engine = BayesLSH(store, BayesLSHConfig(epsilon=0.03, max_hashes=256))
    result = engine.run(all_pair_candidates(dataset.n_rows), threshold)
    retained = {(p.first, p.second) for p in result.pairs}
    clearly_above = [(i, j) for i in range(dataset.n_rows)
                     for j in range(i + 1, dataset.n_rows)
                     if sims[i, j] >= threshold + 0.1]
    assert clearly_above
    missed = sum(1 for pair in clearly_above if pair not in retained)
    assert missed / len(clearly_above) <= 0.05


def test_retained_estimates_are_accurate(dataset, store):
    """Accepted estimates are within ~delta of the exact similarity (Eq. 2.2)."""
    threshold = 0.85
    sims = pairwise_similarity_matrix(dataset)
    engine = BayesLSH(store, BayesLSHConfig(delta=0.05, gamma=0.05, max_hashes=256))
    result = engine.run(all_pair_candidates(dataset.n_rows), threshold)
    errors = [abs(p.similarity - sims[p.first, p.second]) for p in result.pairs]
    assert np.mean(errors) < 0.08
    assert np.quantile(errors, 0.9) < 0.15


def test_cache_resumes_evaluations(dataset, store):
    class RecordingCache:
        def __init__(self):
            self.state = {}
            self.lookups = 0

        def lookup(self, pair):
            self.lookups += 1
            return self.state.get(pair)

        def record(self, evaluation):
            self.state[(evaluation.first, evaluation.second)] = (
                evaluation.n_hashes, evaluation.matches)

    cache = RecordingCache()
    engine = BayesLSH(store)
    candidates = list(all_pair_candidates(30))

    first = engine.run(candidates, 0.9, cache=cache)
    comparisons_first = first.hash_comparisons
    second = engine.run(candidates, 0.8, cache=cache)
    assert second.cached_hash_reuse > 0
    # Re-using cached hash-match state must reduce fresh hash comparisons.
    assert second.hash_comparisons < comparisons_first


def test_progress_callback_invoked(dataset, store):
    engine = BayesLSH(store)
    fractions = []

    def callback(fraction, partial):
        fractions.append(fraction)
        assert partial.n_candidates > 0

    engine.run(all_pair_candidates(20), 0.9, progress_callback=callback,
               progress_every=40)
    assert fractions
    assert all(0 < f <= 1.0 for f in fractions)


def test_run_rejects_invalid_threshold(store):
    engine = BayesLSH(store)
    with pytest.raises(ValueError):
        engine.run([(0, 1)], 0.0)
