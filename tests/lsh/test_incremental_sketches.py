"""Delta-aware sketching and new-vs-all candidate generation.

The approximate tier's O(Δn·n) append contract rests on two properties:

* ``SketchStore.extend_rows`` sketches only the appended rows yet produces a
  matrix **bit-identical** to a full rebuild (sketchers hash rows
  independently with seed-derived randomness);
* the ``new_rows`` mode of both candidate generators emits exactly the pairs
  touching at least one appended row — the ones a full run would emit, no
  old-vs-old pair ever.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from harness import append_split, sparse_random_dataset
from repro.lsh.candidates import all_pair_candidates, banded_candidates
from repro.lsh.sketches import build_sketch_store


def _split(seed: int, n_rows: int = 60, k: int = 12):
    dataset = sparse_random_dataset(seed, n_rows, 24, density=0.3,
                                    n_clusters=3)
    parent, child = append_split(dataset, k)
    return dataset, parent, child


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000), kind=st.sampled_from(["cosine", "jaccard"]),
       n_hashes=st.sampled_from([16, 48, 64]))
def test_extend_rows_matches_full_rebuild_bit_for_bit(seed, kind, n_hashes):
    dataset, parent, child = _split(seed)
    full = build_sketch_store(dataset, kind=kind, n_hashes=n_hashes, seed=7)
    incremental = build_sketch_store(parent, kind=kind, n_hashes=n_hashes,
                                     seed=7)
    before = incremental.build_seconds
    delta = incremental.extend_rows(child)
    assert delta is child.parent_delta
    assert incremental.n_rows == dataset.n_rows
    assert incremental.build_seconds >= before
    assert np.array_equal(full.sketches, incremental.sketches)


def test_extend_rows_requires_a_delta():
    dataset, parent, _ = _split(3)
    store = build_sketch_store(parent, kind="cosine", n_hashes=16, seed=0)
    with pytest.raises(ValueError, match="no parent delta"):
        store.extend_rows(dataset)


def test_extend_rows_rejects_row_count_mismatch():
    _, parent, child = _split(4)
    # A store that does not cover exactly the delta's parent rows is stale.
    short = build_sketch_store(parent.subset(range(parent.n_rows - 1)),
                               kind="cosine", n_hashes=16, seed=0)
    with pytest.raises(ValueError, match="delta parent"):
        short.extend_rows(child)


def test_extend_rows_rejects_content_mismatch():
    _, parent, child = _split(5)
    _, _, other_child = _split(6)
    store = build_sketch_store(parent, kind="cosine", n_hashes=16, seed=0)
    # A delta forged for different content must be refused loudly.
    with pytest.raises(ValueError, match="fingerprint"):
        store.extend_rows(child, other_child.parent_delta)


def test_extend_rows_with_empty_append_is_a_noop():
    _, parent, _ = _split(7)
    child = parent.append_rows([])
    store = build_sketch_store(parent, kind="cosine", n_hashes=16, seed=0)
    before = store.sketches.copy()
    store.extend_rows(child)
    assert np.array_equal(store.sketches, before)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000), band_size=st.sampled_from([2, 4, 8]))
def test_banded_new_vs_all_equals_filtered_full_run(seed, band_size):
    dataset, _, child = _split(seed)
    new_rows = child.parent_delta.new_rows
    store = build_sketch_store(dataset, kind="cosine", n_hashes=32, seed=1)
    full = banded_candidates(store.sketches, band_size=band_size,
                             max_bucket=500)
    narrowed = banded_candidates(store.sketches, band_size=band_size,
                                 max_bucket=500, new_rows=new_rows)
    expected = sorted(p for p in full
                      if p[0] in new_rows or p[1] in new_rows)
    assert narrowed == expected
    assert all(i < j for i, j in narrowed)


def test_all_pair_new_vs_all_equals_filtered_full_run():
    new_rows = range(40, 50)
    full = list(all_pair_candidates(50))
    narrowed = list(all_pair_candidates(50, new_rows=new_rows))
    expected = [p for p in full if p[0] in new_rows or p[1] in new_rows]
    assert sorted(narrowed) == expected
    # O(Δn·n): exactly d*old + d*(d-1)/2 pairs, each once.
    assert len(narrowed) == 10 * 40 + 10 * 9 // 2
    assert len(set(narrowed)) == len(narrowed)


def test_all_pair_new_vs_all_clamps_to_n_rows():
    # A range extending past the dataset (defensive caller) is clamped.
    assert list(all_pair_candidates(3, new_rows=range(2, 10))) == [(0, 2), (1, 2)]
