"""Tests for min-wise hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh import MinHashSketcher


def test_signature_length_and_determinism():
    sketcher = MinHashSketcher(32, seed=0)
    sig_a = sketcher.sketch([1, 2, 3])
    sig_b = sketcher.sketch([1, 2, 3])
    assert len(sig_a) == 32
    assert np.array_equal(sig_a, sig_b)


def test_identical_sets_always_collide():
    sketcher = MinHashSketcher(64, seed=1)
    a = sketcher.sketch([5, 9, 100])
    b = sketcher.sketch([100, 5, 9])
    assert MinHashSketcher.estimate_similarity(a, b) == pytest.approx(1.0)


def test_disjoint_sets_rarely_collide():
    sketcher = MinHashSketcher(128, seed=2)
    a = sketcher.sketch(range(0, 50))
    b = sketcher.sketch(range(1000, 1050))
    assert MinHashSketcher.estimate_similarity(a, b) < 0.1


def test_collision_rate_approximates_jaccard():
    """Core LSH property: collision frequency ~ Jaccard similarity."""
    sketcher = MinHashSketcher(512, seed=3)
    set_a = set(range(0, 60))
    set_b = set(range(30, 90))  # Jaccard = 30 / 90 = 1/3
    estimate = MinHashSketcher.estimate_similarity(
        sketcher.sketch(set_a), sketcher.sketch(set_b))
    assert estimate == pytest.approx(1.0 / 3.0, abs=0.08)


def test_empty_set_sentinel_never_matches():
    sketcher = MinHashSketcher(16, seed=4)
    empty = sketcher.sketch([])
    other = sketcher.sketch([1, 2])
    assert MinHashSketcher.estimate_similarity(empty, other) == 0.0


def test_incremental_prefix_estimate():
    sketcher = MinHashSketcher(64, seed=5)
    a = sketcher.sketch([1, 2, 3, 4])
    b = sketcher.sketch([1, 2, 3, 4])
    assert MinHashSketcher.estimate_similarity(a, b, n_hashes=8) == pytest.approx(1.0)
    assert MinHashSketcher.estimate_similarity(a, b, n_hashes=0) == 0.0


def test_conversions_are_identity():
    assert MinHashSketcher.collision_to_similarity(0.4) == 0.4
    assert MinHashSketcher.similarity_to_collision(0.7) == 0.7


def test_sketch_many_stacks_rows():
    sketcher = MinHashSketcher(8, seed=6)
    matrix = sketcher.sketch_many([[1, 2], [3, 4], []])
    assert matrix.shape == (3, 8)


def test_rejects_nonpositive_hash_count():
    with pytest.raises(ValueError):
        MinHashSketcher(0)


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(0, 500), min_size=1, max_size=40),
       st.sets(st.integers(0, 500), min_size=1, max_size=40))
def test_property_estimate_within_statistical_error(a, b):
    """Min-hash estimates stay within a generous band of the true Jaccard."""
    sketcher = MinHashSketcher(256, seed=7)
    true = len(a & b) / len(a | b)
    estimate = MinHashSketcher.estimate_similarity(sketcher.sketch(a), sketcher.sketch(b))
    assert abs(estimate - true) < 0.2
