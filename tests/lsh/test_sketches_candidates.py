"""Tests for the sketch store and candidate generation."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.lsh import all_pair_candidates, banded_candidates, build_sketch_store
from repro.similarity import pairwise_similarity_matrix


def test_build_sketch_store_cosine():
    ds = make_clustered_vectors(20, 6, 2, seed=0)
    store = build_sketch_store(ds, kind="cosine", n_hashes=32, seed=1)
    assert store.n_rows == 20
    assert store.n_hashes == 32
    assert store.build_seconds >= 0.0


def test_build_sketch_store_jaccard():
    ds = make_clustered_vectors(10, 6, 2, seed=0)
    store = build_sketch_store(ds, kind="jaccard", n_hashes=16, seed=1)
    assert store.sketches.shape == (10, 16)


def test_build_sketch_store_rejects_unknown_kind():
    ds = make_clustered_vectors(5, 3, 2, seed=0)
    with pytest.raises(ValueError):
        build_sketch_store(ds, kind="hamming")


def test_matches_counts_comparisons():
    ds = make_clustered_vectors(6, 4, 2, seed=0)
    store = build_sketch_store(ds, kind="cosine", n_hashes=64, seed=1)
    store.reset_counters()
    matches = store.matches(0, 0, 64)
    assert matches == 64  # identical rows agree on every bit
    assert store.hash_comparisons == 64
    store.matches(0, 1, 10, offset=60)  # clipped at the sketch length
    assert store.hash_comparisons == 64 + 4


def test_estimate_similarity_self_is_one():
    ds = make_clustered_vectors(6, 4, 2, seed=0)
    store = build_sketch_store(ds, kind="cosine", n_hashes=64, seed=1)
    assert store.estimate_similarity(2, 2) == pytest.approx(1.0)


def test_all_pair_candidates_count():
    pairs = list(all_pair_candidates(6))
    assert len(pairs) == 15
    assert all(i < j for i, j in pairs)


def test_banded_candidates_find_similar_rows():
    ds = make_clustered_vectors(60, 8, 3, separation=6.0, cluster_std=0.4, seed=2)
    store = build_sketch_store(ds, kind="cosine", n_hashes=64, seed=3)
    candidates = set(banded_candidates(store.sketches, band_size=8))
    sims = pairwise_similarity_matrix(ds)
    # Every very-high-similarity pair should be recovered as a candidate.
    missing = 0
    total = 0
    for i in range(ds.n_rows):
        for j in range(i + 1, ds.n_rows):
            if sims[i, j] >= 0.95:
                total += 1
                if (i, j) not in candidates:
                    missing += 1
    assert total > 0
    assert missing / total < 0.2


def test_banded_candidates_sorted_unique():
    ds = make_clustered_vectors(30, 5, 2, seed=4)
    store = build_sketch_store(ds, kind="cosine", n_hashes=32, seed=5)
    candidates = banded_candidates(store.sketches, band_size=4)
    assert candidates == sorted(set(candidates))
    assert all(i < j for i, j in candidates)


def test_banded_candidates_rejects_bad_band():
    with pytest.raises(ValueError):
        banded_candidates(np.zeros((3, 8)), band_size=0)
