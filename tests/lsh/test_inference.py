"""Tests for the posterior grid used by BayesLSH."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh import CosineSketcher, MinHashSketcher, PosteriorGrid


def test_posterior_is_normalized():
    grid = PosteriorGrid(MinHashSketcher, resolution=101)
    posterior = grid.posterior(7, 10)
    assert posterior.sum() == pytest.approx(1.0)
    assert np.all(posterior >= 0)


def test_posterior_peaks_near_observed_rate():
    grid = PosteriorGrid(MinHashSketcher, resolution=201)
    posterior = grid.posterior(60, 100)
    assert grid.map_similarity(posterior) == pytest.approx(0.6, abs=0.02)
    assert grid.mean_similarity(posterior) == pytest.approx(0.6, abs=0.05)


def test_posterior_with_zero_hashes_is_prior():
    grid = PosteriorGrid(MinHashSketcher, resolution=51)
    assert np.allclose(grid.posterior(0, 0), grid.prior)


def test_extreme_observations():
    grid = PosteriorGrid(MinHashSketcher, resolution=101)
    all_match = grid.posterior(50, 50)
    assert grid.map_similarity(all_match) == pytest.approx(1.0, abs=0.02)
    none_match = grid.posterior(0, 50)
    assert grid.map_similarity(none_match) == pytest.approx(0.0, abs=0.02)


def test_prob_similarity_above_monotone_in_threshold():
    grid = PosteriorGrid(MinHashSketcher, resolution=101)
    posterior = grid.posterior(30, 60)
    probs = [grid.prob_similarity_above(posterior, t) for t in (0.2, 0.5, 0.8)]
    assert probs[0] >= probs[1] >= probs[2]


def test_variance_decreases_with_more_hashes():
    grid = PosteriorGrid(MinHashSketcher, resolution=201)
    few = grid.similarity_variance(grid.posterior(5, 10))
    many = grid.similarity_variance(grid.posterior(50, 100))
    assert many < few


def test_prob_outside_band_shrinks_with_evidence():
    grid = PosteriorGrid(MinHashSketcher, resolution=201)
    few = grid.posterior(8, 16)
    many = grid.posterior(128, 256)
    est_few = grid.map_similarity(few)
    est_many = grid.map_similarity(many)
    assert (grid.prob_outside_band(many, est_many, 0.05)
            < grid.prob_outside_band(few, est_few, 0.05))


def test_cosine_similarity_grid_spans_negative_values():
    grid = PosteriorGrid(CosineSketcher, resolution=101)
    assert grid.similarity_grid.min() == pytest.approx(-1.0)
    assert grid.similarity_grid.max() == pytest.approx(1.0)


def test_credible_interval_contains_map():
    grid = PosteriorGrid(MinHashSketcher, resolution=201)
    posterior = grid.posterior(70, 100)
    low, high = grid.credible_interval(posterior, 0.95)
    assert low <= grid.map_similarity(posterior) <= high


def test_custom_prior_shifts_posterior():
    uniform = PosteriorGrid(MinHashSketcher, resolution=101)
    weights = np.exp(-((uniform.grid - 0.9) ** 2) / 0.001)
    informed = uniform.with_prior(weights)
    weak_evidence = (3, 5)
    assert (informed.mean_similarity(informed.posterior(*weak_evidence))
            > uniform.mean_similarity(uniform.posterior(*weak_evidence)))


def test_invalid_arguments():
    with pytest.raises(ValueError):
        PosteriorGrid(MinHashSketcher, resolution=2)
    grid = PosteriorGrid(MinHashSketcher)
    with pytest.raises(ValueError):
        grid.posterior(5, 3)
    with pytest.raises(ValueError):
        grid.with_prior(np.ones(7))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200))
def test_property_posterior_normalized_for_any_evidence(n):
    grid = PosteriorGrid(MinHashSketcher, resolution=101)
    m = n // 2
    assert grid.posterior(m, n).sum() == pytest.approx(1.0)
