"""Tests for signed random projection sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import VectorDataset
from repro.lsh import CosineSketcher
from repro.similarity import cosine_similarity


def _rows(vectors, n_features=30):
    ds = VectorDataset.from_dense(np.asarray(vectors, dtype=float)[:, :n_features],
                                  prune_zeros=False)
    return [ds.row(i) for i in range(ds.n_rows)]


def test_sketch_shape_and_determinism():
    sketcher = CosineSketcher(64, 10, seed=0)
    ds = VectorDataset.from_rows([{0: 1.0, 3: 2.0}], n_features=10)
    a = sketcher.sketch(ds.row(0))
    b = sketcher.sketch(ds.row(0))
    assert a.shape == (64,)
    assert np.array_equal(a, b)
    assert set(np.unique(a)) <= {0, 1}


def test_identical_vectors_agree_everywhere():
    sketcher = CosineSketcher(128, 20, seed=1)
    ds = VectorDataset.from_rows([{1: 1.0, 5: -2.0}], n_features=20)
    sketch = sketcher.sketch(ds.row(0))
    assert CosineSketcher.estimate_similarity(sketch, sketch) == pytest.approx(1.0)


def test_opposite_vectors_disagree_everywhere():
    sketcher = CosineSketcher(128, 5, seed=2)
    ds = VectorDataset.from_dense(np.array([[1.0, 2.0, 0, 0, 0],
                                            [-1.0, -2.0, 0, 0, 0]]),
                                  prune_zeros=False)
    a = sketcher.sketch(ds.row(0))
    b = sketcher.sketch(ds.row(1))
    assert CosineSketcher.estimate_similarity(a, b) == pytest.approx(-1.0)


def test_agreement_rate_matches_angle():
    """Bit-agreement probability ~ 1 - theta/pi for random vectors."""
    rng = np.random.default_rng(3)
    n_features = 25
    sketcher = CosineSketcher(1024, n_features, seed=4)
    x = rng.normal(size=n_features)
    y = rng.normal(size=n_features)
    ds = VectorDataset.from_dense(np.vstack([x, y]), prune_zeros=False)
    true_cosine = cosine_similarity(ds.row(0), ds.row(1))
    estimate = CosineSketcher.estimate_similarity(
        sketcher.sketch(ds.row(0)), sketcher.sketch(ds.row(1)))
    assert estimate == pytest.approx(true_cosine, abs=0.12)


def test_empty_row_gets_zero_sketch():
    sketcher = CosineSketcher(16, 4, seed=5)
    ds = VectorDataset.from_rows([{}], n_features=4)
    assert sketcher.sketch(ds.row(0)).sum() == 0


def test_conversion_round_trip():
    for s in [-0.9, -0.3, 0.0, 0.4, 0.85, 1.0]:
        p = CosineSketcher.similarity_to_collision(s)
        assert CosineSketcher.collision_to_similarity(p) == pytest.approx(s, abs=1e-9)


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        CosineSketcher(0, 5)
    with pytest.raises(ValueError):
        CosineSketcher(5, 0)


@settings(max_examples=20, deadline=None)
@given(st.floats(0.0, 1.0))
def test_property_conversion_monotone(p):
    """Higher collision probability always maps to higher similarity."""
    lower = CosineSketcher.collision_to_similarity(max(0.0, p - 0.05))
    upper = CosineSketcher.collision_to_similarity(min(1.0, p + 0.05))
    assert upper >= lower
