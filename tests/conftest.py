"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# The test tree has no __init__.py files (importlib mode), so shared
# non-test helpers like tests/similarity/harness.py are made importable by
# putting their directories on sys.path (``import harness``).
for _helper_dir in [Path(__file__).parent / "similarity"]:
    if str(_helper_dir) not in sys.path:
        sys.path.insert(0, str(_helper_dir))

from repro.datasets import (
    VectorDataset,
    make_clustered_vectors,
    make_sparse_corpus,
    make_toy_dataset,
)
from repro.datasets.transactions import make_planted_transactions


@pytest.fixture(scope="session")
def toy_dataset() -> VectorDataset:
    """The 50-record, 3-attribute toy dataset of Figure 2.2."""
    return make_toy_dataset()


@pytest.fixture(scope="session")
def clustered_dataset() -> VectorDataset:
    """A small, clearly clustered dense dataset used across subsystems."""
    return make_clustered_vectors(120, 10, 4, separation=5.0, cluster_std=0.8,
                                  seed=11, name="clustered-small")


@pytest.fixture(scope="session")
def sparse_corpus() -> VectorDataset:
    """A small sparse TF/IDF corpus with latent topics."""
    return make_sparse_corpus(80, 400, avg_doc_length=25, n_topics=5, seed=13,
                              name="corpus-small")


@pytest.fixture(scope="session")
def planted_transactions():
    """A transaction database with planted frequent patterns."""
    return make_planted_transactions(300, 120, n_patterns=8, seed=17,
                                     name="planted-small")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
