"""Tests for graph generation models."""

import numpy as np
import pytest

from repro.graphs import (
    erdos_renyi_graph,
    generate_with_edge_count,
    preferential_attachment_graph,
    random_geometric_graph,
)
from repro.graphs.measures import triangle_count


def test_erdos_renyi_edge_count_exact():
    graph = erdos_renyi_graph(50, 200, seed=0)
    assert graph.n_nodes == 50
    assert graph.n_edges == 200


def test_erdos_renyi_near_complete():
    graph = erdos_renyi_graph(12, 60, seed=1)
    assert graph.n_edges == 60


def test_erdos_renyi_caps_at_complete_graph():
    graph = erdos_renyi_graph(6, 1000, seed=2)
    assert graph.n_edges == 15
    assert graph.is_complete()


def test_preferential_attachment_edge_count_close():
    target = 300
    graph = preferential_attachment_graph(80, target, seed=3)
    assert graph.n_nodes == 80
    assert abs(graph.n_edges - target) <= 0.15 * target


def test_preferential_attachment_degree_skew():
    """PA graphs have heavier-tailed degree distributions than ER graphs."""
    pa = preferential_attachment_graph(200, 600, seed=4)
    er = erdos_renyi_graph(200, 600, seed=4)
    assert max(pa.degrees()) > max(er.degrees())


def test_random_geometric_edge_count_exact():
    graph = random_geometric_graph(60, 250, seed=5)
    assert graph.n_edges == 250


def test_random_geometric_has_more_triangles_than_er():
    """Geometric graphs are locally clustered, ER graphs are not."""
    geom = random_geometric_graph(100, 500, seed=6)
    er = erdos_renyi_graph(100, 500, seed=6)
    assert triangle_count(geom) > triangle_count(er)


def test_generate_with_edge_count_dispatch():
    for model in ("erdos_renyi", "preferential_attachment", "random_geometric"):
        graph = generate_with_edge_count(model, 40, 100, seed=7)
        assert graph.n_nodes == 40
        assert graph.n_edges > 0


def test_generate_with_edge_count_unknown_model():
    with pytest.raises(KeyError):
        generate_with_edge_count("small-world", 10, 20)


def test_generators_deterministic_given_seed():
    a = erdos_renyi_graph(30, 90, seed=11)
    b = erdos_renyi_graph(30, 90, seed=11)
    assert sorted(a.edges()) == sorted(b.edges())


def test_zero_target_edges():
    for model in ("erdos_renyi", "preferential_attachment", "random_geometric"):
        graph = generate_with_edge_count(model, 10, 0, seed=0)
        assert graph.n_edges == 0
