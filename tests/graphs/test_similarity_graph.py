"""Tests for thresholded similarity graphs and densifying series."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.graphs import (
    densifying_series,
    graph_from_pairs,
    similarity_graph,
    threshold_for_edge_count,
)
from repro.similarity import SimilarPair, exact_pair_count, pairwise_similarity_matrix


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(60, 6, 3, separation=5.0, seed=31)


def test_graph_from_pairs_accepts_tuples_and_similarpairs():
    graph = graph_from_pairs(4, [(0, 1), SimilarPair(2, 3, 0.9)])
    assert graph.n_edges == 2


def test_similarity_graph_edge_count_matches_exact_pairs(dataset):
    threshold = 0.8
    graph = similarity_graph(dataset, threshold)
    expected = exact_pair_count(dataset, [threshold])[threshold]
    assert graph.n_edges == expected


def test_similarity_graph_monotone_in_threshold(dataset):
    sims = pairwise_similarity_matrix(dataset)
    sparse = similarity_graph(dataset, 0.9, similarities=sims)
    dense = similarity_graph(dataset, 0.5, similarities=sims)
    assert dense.n_edges >= sparse.n_edges
    # Nestedness: every sparse edge appears in the dense graph.
    for u, v in sparse.edges():
        assert dense.has_edge(u, v)


def test_threshold_for_edge_count_hits_target(dataset):
    sims = pairwise_similarity_matrix(dataset)
    for target in (10, 100, 400):
        threshold = threshold_for_edge_count(sims, target)
        graph = similarity_graph(dataset, threshold, similarities=sims)
        assert graph.n_edges >= target
        # Ties can add a handful of extra edges but not massively more.
        assert graph.n_edges <= target + dataset.n_rows


def test_threshold_for_edge_count_extremes(dataset):
    sims = pairwise_similarity_matrix(dataset)
    n_pairs = dataset.n_rows * (dataset.n_rows - 1) // 2
    assert threshold_for_edge_count(sims, 0) > sims.max()
    low = threshold_for_edge_count(sims, n_pairs + 10)
    graph = similarity_graph(dataset, low, similarities=sims)
    assert graph.n_edges == n_pairs


def test_densifying_series_is_nested_and_increasing(dataset):
    counts = [20, 80, 320]
    series = densifying_series(dataset, counts)
    assert len(series) == 3
    edge_counts = [graph.n_edges for _, graph in series]
    assert edge_counts == sorted(edge_counts)
    thresholds = [t for t, _ in series]
    assert thresholds == sorted(thresholds, reverse=True)
