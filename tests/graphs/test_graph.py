"""Tests for the Graph container."""

import pytest

from repro.graphs import Graph


def test_empty_graph():
    graph = Graph(5)
    assert graph.n_nodes == 5
    assert graph.n_edges == 0
    assert graph.density() == 0.0
    assert not graph.is_complete()


def test_add_edge_and_duplicates():
    graph = Graph(4)
    assert graph.add_edge(0, 1)
    assert not graph.add_edge(1, 0)  # same undirected edge
    assert not graph.add_edge(2, 2)  # self loop ignored
    assert graph.n_edges == 1
    assert graph.has_edge(0, 1) and graph.has_edge(1, 0)


def test_add_edge_out_of_range():
    graph = Graph(3)
    with pytest.raises(ValueError):
        graph.add_edge(0, 5)


def test_degrees_and_neighbors():
    graph = Graph(4, edges=[(0, 1), (0, 2), (0, 3)])
    assert graph.degree(0) == 3
    assert graph.degrees() == [3, 1, 1, 1]
    assert graph.neighbors(0) == {1, 2, 3}


def test_edges_iteration_is_canonical():
    graph = Graph(4, edges=[(2, 1), (3, 0)])
    assert sorted(graph.edges()) == [(0, 3), (1, 2)]


def test_complete_graph_detection():
    graph = Graph(4, edges=[(i, j) for i in range(4) for j in range(i + 1, 4)])
    assert graph.is_complete()
    assert graph.density() == pytest.approx(1.0)


def test_copy_is_independent():
    graph = Graph(3, edges=[(0, 1)])
    clone = graph.copy()
    clone.add_edge(1, 2)
    assert graph.n_edges == 1
    assert clone.n_edges == 2


def test_subgraph_relabels_nodes():
    graph = Graph(5, edges=[(0, 1), (1, 2), (3, 4)])
    sub = graph.subgraph([1, 2, 4])
    assert sub.n_nodes == 3
    assert sub.has_edge(0, 1)     # old (1, 2)
    assert not sub.has_edge(0, 2)
    assert sub.n_edges == 1


def test_networkx_round_trip():
    graph = Graph(4, edges=[(0, 1), (2, 3)])
    nx_graph = graph.to_networkx()
    assert nx_graph.number_of_edges() == 2
    back = Graph.from_networkx(nx_graph)
    assert back.n_edges == 2
    assert back.n_nodes == 4


def test_adjacency_dict_view():
    graph = Graph(3, edges=[(0, 2)])
    assert graph.adjacency_dict() == {0: [2], 1: [], 2: [0]}
