"""Tests for graph measures against known values and networkx."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, compute_measure, compute_measures, available_measures
from repro.graphs.measures import (
    average_clustering,
    clique_number,
    diameter_largest_component,
    mean_core_number,
    number_connected_components,
    triangle_count,
    triangles_per_vertex,
    top_eigenvalue,
)


def _triangle_graph():
    return Graph(3, edges=[(0, 1), (1, 2), (0, 2)])


def _complete_graph(n):
    return Graph(n, edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


def test_triangle_count_simple_cases():
    assert triangle_count(_triangle_graph()) == 1
    assert triangle_count(Graph(4, edges=[(0, 1), (1, 2), (2, 3)])) == 0
    assert triangle_count(_complete_graph(5)) == math.comb(5, 3)


def test_triangles_per_vertex():
    graph = Graph(4, edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    per_vertex = triangles_per_vertex(graph)
    assert per_vertex.tolist() == [1, 1, 1, 0]


def test_triangle_count_matches_networkx_on_random_graph():
    rng = np.random.default_rng(0)
    nx_graph = nx.gnm_random_graph(40, 150, seed=3)
    graph = Graph.from_networkx(nx_graph)
    ours = triangle_count(graph)
    theirs = sum(nx.triangles(nx_graph).values()) / 3
    assert ours == theirs


def test_average_clustering_matches_networkx():
    nx_graph = nx.gnm_random_graph(30, 90, seed=5)
    graph = Graph.from_networkx(nx_graph)
    assert average_clustering(graph) == pytest.approx(nx.average_clustering(nx_graph))


def test_connected_components_and_diameter():
    graph = Graph(6, edges=[(0, 1), (1, 2), (3, 4)])
    assert number_connected_components(graph) == 3
    assert compute_measure(graph, "largest_connected_component") == 3
    assert diameter_largest_component(graph) == 2


def test_diameter_of_complete_graph_is_one():
    assert diameter_largest_component(_complete_graph(6)) == 1


def test_core_number_matches_networkx():
    nx_graph = nx.gnm_random_graph(35, 120, seed=7)
    graph = Graph.from_networkx(nx_graph)
    expected = float(np.mean(list(nx.core_number(nx_graph).values())))
    assert mean_core_number(graph) == pytest.approx(expected)


def test_clique_number_known_value():
    assert clique_number(_complete_graph(4)) == 4
    graph = Graph(5, edges=[(0, 1), (1, 2), (0, 2), (3, 4)])
    assert clique_number(graph) == 3


def test_top_eigenvalue_complete_graph():
    """Adjacency spectrum of K_n has top eigenvalue n - 1."""
    assert top_eigenvalue(_complete_graph(8)) == pytest.approx(7.0, abs=0.05)


def test_compute_measures_returns_all_registered():
    graph = _triangle_graph()
    values = compute_measures(graph)
    assert set(values) == set(available_measures())
    assert values["edge_count"] == 3
    assert values["triangle_count"] == 1


def test_compute_measure_unknown_name():
    with pytest.raises(KeyError):
        compute_measure(_triangle_graph(), "not-a-measure")


def test_empty_graph_measures_are_finite():
    graph = Graph(4)
    values = compute_measures(graph)
    assert all(np.isfinite(v) for v in values.values())
    assert values["triangle_count"] == 0
    assert values["number_connected_components"] == 4


@settings(max_examples=15, deadline=None)
@given(st.integers(5, 25), st.integers(0, 60), st.integers(0, 10_000))
def test_property_triangle_count_matches_networkx(n_nodes, n_edges, seed):
    nx_graph = nx.gnm_random_graph(n_nodes, min(n_edges, n_nodes * (n_nodes - 1) // 2),
                                   seed=seed)
    graph = Graph.from_networkx(nx_graph)
    assert triangle_count(graph) == sum(nx.triangles(nx_graph).values()) / 3


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 20), st.integers(0, 40), st.integers(0, 10_000))
def test_property_components_match_networkx(n_nodes, n_edges, seed):
    nx_graph = nx.gnm_random_graph(n_nodes, min(n_edges, n_nodes * (n_nodes - 1) // 2),
                                   seed=seed)
    graph = Graph.from_networkx(nx_graph)
    assert number_connected_components(graph) == nx.number_connected_components(nx_graph)
