"""Two-process concurrent ingest hammer.

One process plays the *ingest* role: it appends row batches generation by
generation, extends each parent floor with the sharded delta backend and
lands every child floor in a shared ``SimilarityStore``.  A second process
plays the *sweeper*: it hammers the same store with floor lookups the whole
time.  The contract under test is the atomic-landing guarantee: the sweeper
only ever observes a floor that is **bit-complete** — exactly the pre-ingest
parent floor (or a miss) before a generation lands, exactly the post-ingest
floor after — never a torn, partial or mixed-generation pair set.

Every generation's expected floor is computed from scratch in the parent
test process, so the sweeper validates against ground truth it did not
derive from the store.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.datasets import make_clustered_vectors
from repro.similarity import ApssEngine
from repro.store import SimilarityStore

THRESHOLD = 0.3
GENERATIONS = 6
BATCH_ROWS = 5
BASE_ROWS = 36


def _dataset_chain():
    """The deterministic append chain both processes can rebuild."""
    full = make_clustered_vectors(BASE_ROWS + GENERATIONS * BATCH_ROWS, 8, 4,
                                  separation=4.0, seed=71,
                                  name="concurrent-ingest")
    chain = [full.subset(range(BASE_ROWS), name="gen-0")]
    for generation in range(1, GENERATIONS + 1):
        stop = BASE_ROWS + generation * BATCH_ROWS
        batch = full.subset(range(stop - BATCH_ROWS, stop))
        chain.append(chain[-1].append_rows(batch, name=f"gen-{generation}"))
    return chain


def _keys(chain):
    return [(dataset.fingerprint(), "cosine", "exact-blocked", ())
            for dataset in chain]


def _writer(store_root, done_event):
    """Ingest every generation: sharded delta extend + atomic store landing."""
    from repro.similarity import reset_shared_pools
    from repro.store import DeltaApssBackend

    # Lead a fresh process group: the crash test SIGKILLs this process with
    # killpg, which must also take out the pool workers it forked — an
    # orphaned worker blocked on its call queue would otherwise hold the
    # inherited stdout pipe open and stall any piped pytest run (CI logs).
    if hasattr(os, "setpgrp"):
        os.setpgrp()
    try:
        chain = _dataset_chain()
        keys = _keys(chain)
        store = SimilarityStore(store_root)
        floor = ApssEngine().search(chain[0], THRESHOLD)
        store.save_result(keys[0], floor)
        delta = DeltaApssBackend(n_workers=2)
        for generation in range(1, GENERATIONS + 1):
            floor = delta.extend(floor, chain[generation])
            store.save_result(keys[generation], floor)
            # Re-land the same floor: exercises replace-while-read races on
            # an already-present entry, not just create-while-read.
            store.save_result(keys[generation], floor)
    finally:
        # multiprocessing children skip regular atexit handlers (where the
        # shared pools normally shut down), and a worker surviving shutdown
        # (the call-queue wakeup race) would deadlock this process's exit
        # join — wait=True joins and, past a grace period, kills workers.
        reset_shared_pools(wait=True)
        done_event.set()


def _sweeper(store_root, expected_by_key, done_event, out_queue):
    """Hammer lookups; report any observation that is not a complete floor."""
    store = SimilarityStore(store_root)
    mismatches = []
    observed = 0
    writer_done = False
    deadline = time.monotonic() + 240
    while True:
        if done_event.is_set() or time.monotonic() > deadline:
            writer_done = True  # one final full pass after the writer ends
        for key, expected_pairs in expected_by_key:
            result = store.load_result(tuple(key))
            if result is None:
                continue  # pre-ingest for this generation: a clean miss
            observed += 1
            got = [(p.first, p.second, round(p.similarity, 12))
                   for p in result.pairs]
            if got != expected_pairs:
                mismatches.append((key, len(got), len(expected_pairs)))
        if writer_done:
            break
        # Brief yield: an unthrottled spin starves the writer (and its
        # worker pool) on single-CPU machines without making the race any
        # more interesting — hundreds of passes still interleave.
        time.sleep(0.002)
    out_queue.put((mismatches, observed, store.evictions))


def _kill_writer_group(writer):
    """SIGKILL the writer *and* any pool workers in its process group.

    Surviving workers are not just a leak: they inherit the test runner's
    stdout/stderr pipes, and a piped pytest invocation (CI log capture)
    blocks on EOF until every holder of the pipe is gone.
    """
    try:
        os.killpg(writer.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        # Group already gone (or setpgrp had not run yet): kill directly.
        writer.kill()
    writer.join(timeout=30)


def test_sweeper_never_observes_a_torn_floor(tmp_path):
    from repro.similarity import reset_shared_pools

    # Quiesce any shared pools from earlier tests before fork(): an executor
    # manager thread holding a queue lock mid-fork deadlocks the child.
    reset_shared_pools(wait=True)
    chain = _dataset_chain()
    keys = _keys(chain)
    engine = ApssEngine()
    expected_by_key = []
    for dataset, key in zip(chain, keys):
        scratch = engine.search(dataset, THRESHOLD)
        expected_by_key.append((key, [
            (p.first, p.second, round(p.similarity, 12))
            for p in scratch.pairs]))

    store_root = tmp_path / "hammer-store"
    context = mp.get_context("fork" if os.name == "posix" else "spawn")
    done = context.Event()
    out: mp.Queue = context.Queue()
    writer = context.Process(target=_writer, args=(str(store_root), done))
    sweeper = context.Process(
        target=_sweeper, args=(str(store_root), expected_by_key, done, out))
    sweeper.start()
    writer.start()
    try:
        writer.join(timeout=120)
        mismatches, observed, evictions = out.get(timeout=120)
        sweeper.join(timeout=30)
    finally:
        # Never leave a child (or its pool workers) behind: a straggler
        # holding the inherited stdout pipe would stall piped test runs.
        if writer.is_alive():
            _kill_writer_group(writer)
        if sweeper.is_alive():
            sweeper.kill()
            sweeper.join(timeout=30)
    assert writer.exitcode == 0
    assert sweeper.exitcode == 0

    assert mismatches == [], \
        f"sweeper observed torn floors: {mismatches[:5]}"
    assert observed > 0, "the sweeper never saw a single landed floor"
    # After the dust settles the store holds every generation, bit-complete.
    store = SimilarityStore(store_root)
    for key, expected_pairs in expected_by_key:
        final = store.load_result(tuple(key))
        assert final is not None
        assert [(p.first, p.second, round(p.similarity, 12))
                for p in final.pairs] == expected_pairs
    # The delta chain's floors equal from-scratch searches (checked above),
    # so any eviction the sweeper triggered would have been a real tear.
    assert evictions == 0


def _publish_lineage(store, generations=4):
    """Land a delta chain in the versioned lineage (parent process side)."""
    chain = _dataset_chain()[:generations]
    keys = _keys(chain)
    engine = ApssEngine()
    store.publish_floor(keys[0], engine.search(chain[0], THRESHOLD))
    for dataset, key in zip(chain[1:], keys[1:]):
        delta = dataset.parent_delta
        store.publish_generation(dataset.fingerprint(),
                                 parent=delta.parent_fingerprint,
                                 n_rows=dataset.n_rows,
                                 parent_rows=delta.parent_rows)
        store.publish_floor(key, engine.search(dataset, THRESHOLD),
                            delta=delta)
    return chain, keys


def _compaction_crasher(store_root):
    """Child process: compact, held open inside the pre-publish window."""
    from repro.store import SimilarityStore
    from repro.store.gc import compact

    compact(SimilarityStore(store_root), pause_before_publish=120)


def _gc_crasher(store_root):
    """Child process: GC, held open between the manifest and entry phases."""
    from repro.store import SimilarityStore
    from repro.store.gc import collect_garbage

    collect_garbage(SimilarityStore(store_root), pause_between_phases=120)


def test_crash_mid_compaction_recovers_to_pre_compaction_manifest(tmp_path):
    """SIGKILL inside compaction's crash window (consolidated entries on
    disk, successor manifest unpublished): the store must reopen on the
    pre-compaction manifest, leak nothing past one GC pass, and a re-run
    compaction must complete with zero kernel work."""
    from repro.similarity import reset_shared_pools
    from repro.store import fsck

    reset_shared_pools(wait=True)  # no executor threads across the fork
    store = SimilarityStore(tmp_path / "crash-compact")
    chain, keys = _publish_lineage(store)
    version_before = store.manifest().version
    lineage_dir = store.root / "lineage"
    entries_before = len(list(lineage_dir.glob("*.entry")))

    context = mp.get_context("fork" if os.name == "posix" else "spawn")
    crasher = context.Process(target=_compaction_crasher,
                              args=(str(store.root),))
    crasher.start()
    try:
        # The seam sleeps *after* the consolidated entries land and *before*
        # the successor manifest publishes: the first new entry file proves
        # the pass is inside its crash window.
        deadline = time.monotonic() + 90
        while len(list(lineage_dir.glob("*.entry"))) <= entries_before:
            if time.monotonic() > deadline or not crasher.is_alive():
                pytest.fail("compaction never entered its crash window")
            time.sleep(0.005)
    finally:
        crasher.kill()
        crasher.join(timeout=30)

    # Recovery contract: the pre-compaction manifest is current, every
    # chain still resolves, and the half-written consolidation is debris.
    assert store.manifest().version == version_before
    report = fsck(store.root)
    assert report.ok, report.errors
    assert any("orphan" in warning for warning in report.warnings)
    with store.open_snapshot() as snapshot:
        assert snapshot.load_result(keys[-1]) is not None
    store.gc()
    assert fsck(store.root, strict_orphans=True).ok  # nothing leaked

    engine = ApssEngine()
    scratch = engine.search(chain[-1], THRESHOLD)
    calls = engine.search_calls
    stats = store.compact()
    assert stats.chains_folded == 1 and engine.search_calls == calls
    with store.open_snapshot() as snapshot:
        final = snapshot.load_result(keys[-1])
    assert final.pair_set() == scratch.pair_set()


def test_crash_mid_gc_never_dangles_the_current_manifest(tmp_path):
    """SIGKILL between GC's two phases (condemned manifests gone, their
    entries not yet reclaimed): the current manifest must stay fully
    resolvable — the crash may orphan entries, never dangle a reference."""
    from repro.similarity import reset_shared_pools
    from repro.store import fsck

    reset_shared_pools(wait=True)
    store = SimilarityStore(tmp_path / "crash-gc")
    chain, keys = _publish_lineage(store)
    store.compact()  # superseded manifests + entries become garbage
    versions_before = len(store.lineage.versions())
    assert versions_before > 1

    context = mp.get_context("fork" if os.name == "posix" else "spawn")
    crasher = context.Process(target=_gc_crasher, args=(str(store.root),))
    crasher.start()
    try:
        deadline = time.monotonic() + 90
        while len(store.lineage.versions()) >= versions_before:
            if time.monotonic() > deadline or not crasher.is_alive():
                pytest.fail("GC never entered its crash window")
            time.sleep(0.005)
    finally:
        crasher.kill()
        crasher.join(timeout=30)

    current = store.manifest()
    for relative in current.files():
        assert (store.root / relative).is_file(), \
            f"GC crash dangled {relative} out of the current manifest"
    report = fsck(store.root)
    assert report.ok, report.errors
    with store.open_snapshot() as snapshot:
        assert snapshot.load_result(keys[-1]) is not None
    # One clean pass reclaims whatever the crash stranded: the leak oracle.
    store.gc()
    assert fsck(store.root, strict_orphans=True).ok


def test_crashed_ingest_leaves_no_partial_entry(tmp_path):
    """Kill the writer mid-run (SIGKILL, no cleanup): whatever landed must
    be complete, whatever did not land must be absent — never partial."""
    from repro.similarity import reset_shared_pools

    reset_shared_pools(wait=True)  # no executor threads across the fork
    chain = _dataset_chain()
    keys = _keys(chain)
    store_root = tmp_path / "crash-store"

    context = mp.get_context("fork" if os.name == "posix" else "spawn")
    done = context.Event()
    writer = context.Process(target=_writer, args=(str(store_root), done))
    writer.start()
    # Let it make some progress, then kill it without warning.  The poll
    # sleeps (a tight loop would starve the writer on a single-CPU box) and
    # has a deadline so a stuck writer fails the test instead of hanging it.
    deadline = time.monotonic() + 90
    while not (store_root / "pairs").is_dir() and writer.is_alive():
        if time.monotonic() > deadline:
            _kill_writer_group(writer)
            pytest.fail("writer made no progress within 90s")
        time.sleep(0.01)
    _kill_writer_group(writer)

    engine = ApssEngine()
    store = SimilarityStore(store_root)
    landed = 0
    for dataset, key in zip(chain, keys):
        result = store.load_result(key)
        if result is None:
            continue
        landed += 1
        scratch = engine.search(dataset, THRESHOLD)
        assert result.pair_set() == scratch.pair_set(), \
            f"partial floor for {dataset.name} survived the crash"
    assert store.evictions == 0, "the crash left a corrupt entry behind"
    # Temp files from an interrupted atomic write may exist; they are inert
    # (never read) — but no *entry* may be partial, which the loop proved.
    assert landed <= len(keys)
