"""Snapshot-isolation battery for the MVCC store.

The contract under test: a sweep opened via ``open_snapshot()`` — before,
during or after an ingest — observes exactly **one bit-complete lineage
state**.  Every floor it resolves equals a from-scratch ground-truth search
at one published threshold (never a torn or mixed-generation pair set), and
the observation never changes for the lifetime of the snapshot, no matter
what lands, lowers, compacts or collects concurrently.

Two drivers:

* a hypothesis suite replaying adversarial interleavings of the writer
  operations (land a generation, lower a floor, compact, GC, open/close
  snapshots) in-process, the patterns distilled from
  ``test_concurrent_ingest.py``;
* a genuinely concurrent two-process test — the acceptance criterion —
  where a pinned snapshot in the parent must stay bit-identical while a
  child process ingests appends and runs ``compact()`` + ``gc()``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import seeded_clustered
from repro.similarity import ApssEngine
from repro.store import SimilarityStore, fsck

THRESHOLDS = (0.3, 0.15)
BASE_ROWS = 24
BATCH_ROWS = 4
GENERATIONS = 3


def _key(dataset):
    return (dataset.fingerprint(), "cosine", "exact-blocked", ())


@lru_cache(maxsize=1)
def _chain():
    """The deterministic append chain every example replays."""
    full = seeded_clustered(407, n_rows=BASE_ROWS + GENERATIONS * BATCH_ROWS,
                            separation=4.0)
    chain = [full.subset(range(BASE_ROWS), name="gen-0")]
    for generation in range(1, GENERATIONS + 1):
        stop = BASE_ROWS + generation * BATCH_ROWS
        rows = full.subset(range(stop - BATCH_ROWS, stop))
        chain.append(chain[-1].append_rows(rows, name=f"gen-{generation}"))
    return chain


@lru_cache(maxsize=1)
def _ground_truth():
    """Canonical pair lists per (generation, threshold), computed once."""
    engine = ApssEngine()
    truth = {}
    for index, dataset in enumerate(_chain()):
        for threshold in THRESHOLDS:
            result = engine.search(dataset, threshold)
            truth[(index, threshold)] = _canonical(result)
    return truth


def _canonical(result):
    return [(p.first, p.second, round(p.similarity, 12))
            for p in sorted(result.pairs, key=lambda p: (p.first, p.second))]


def _observe(snapshot):
    """What one snapshot sees of the whole lineage, in canonical form."""
    view = {}
    for index, dataset in enumerate(_chain()):
        result = snapshot.load_result(_key(dataset))
        view[index] = (None if result is None
                       else (result.threshold, _canonical(result)))
    return view


def _assert_bit_complete(view):
    """Every observed floor is exactly one ground-truth state, never torn."""
    truth = _ground_truth()
    for index, observed in view.items():
        if observed is None:
            continue
        threshold, pairs = observed
        assert threshold in THRESHOLDS, \
            f"generation {index} served unpublished threshold {threshold}"
        assert pairs == truth[(index, threshold)], \
            f"generation {index} served a torn floor at {threshold}"


# --------------------------------------------------------------------- #
# Adversarial interleavings (in-process, hypothesis-driven)
# --------------------------------------------------------------------- #

#: The writer-side operations an example interleaves.  ``land`` publishes
#: the next unlanded generation (delta landing when eligible); ``lower``
#: republishes an already-landed generation's floor at the tighter
#: threshold; the rest are maintenance passes and reader lifecycle events.
_OPS = st.lists(
    st.sampled_from(["land", "lower", "compact", "gc", "open", "close"]),
    min_size=4, max_size=14)


@settings(max_examples=25, deadline=None)
@given(_OPS)
def test_every_snapshot_sees_one_bit_complete_state(tmp_path_factory, ops):
    chain = _chain()
    engine = ApssEngine()
    store = SimilarityStore(
        tmp_path_factory.mktemp("interleave") / "store")
    open_snapshots = []  # [(snapshot, observation-at-open)]
    landed = 0
    try:
        for op in ops + ["land", "open"]:  # always end with a live reader
            if op == "land" and landed <= GENERATIONS:
                dataset = chain[landed]
                if landed > 0:
                    delta = dataset.parent_delta
                    store.publish_generation(
                        dataset.fingerprint(),
                        parent=delta.parent_fingerprint,
                        n_rows=dataset.n_rows,
                        parent_rows=delta.parent_rows)
                    store.publish_floor(_key(dataset),
                                        engine.search(dataset, THRESHOLDS[0]),
                                        delta=delta)
                else:
                    store.publish_floor(_key(dataset),
                                        engine.search(dataset, THRESHOLDS[0]))
                landed += 1
            elif op == "lower" and landed:
                dataset = chain[landed - 1]
                store.publish_floor(_key(dataset),
                                    engine.search(dataset, THRESHOLDS[1]))
            elif op == "compact":
                store.compact()
            elif op == "gc":
                store.gc()
            elif op == "open":
                snapshot = store.open_snapshot()
                view = _observe(snapshot)
                _assert_bit_complete(view)
                open_snapshots.append((snapshot, view))
            elif op == "close" and open_snapshots:
                snapshot, _ = open_snapshots.pop(0)
                snapshot.close()
            # The isolation contract: no operation moves any open reader.
            for snapshot, opened_view in open_snapshots:
                assert _observe(snapshot) == opened_view, \
                    f"snapshot v{snapshot.version} moved after {op!r}"
        assert fsck(store.root).ok
    finally:
        for snapshot, _ in open_snapshots:
            snapshot.close()


# --------------------------------------------------------------------- #
# Two-process isolation (the acceptance criterion)
# --------------------------------------------------------------------- #

def _ingest_writer(store_root, marker_dir):
    """Child process: ingest every generation, lower, compact, collect."""
    chain = _chain()
    engine = ApssEngine()
    store = SimilarityStore(store_root)
    for generation in range(1, GENERATIONS + 1):
        dataset = chain[generation]
        delta = dataset.parent_delta
        store.publish_generation(dataset.fingerprint(),
                                 parent=delta.parent_fingerprint,
                                 n_rows=dataset.n_rows,
                                 parent_rows=delta.parent_rows)
        store.publish_floor(_key(dataset),
                            engine.search(dataset, THRESHOLDS[0]),
                            delta=delta)
        (marker_dir / f"gen-{generation}").touch()
    # Rewrite history under the reader: lower the base floor, fold the
    # chain, collect everything unpinned.
    store.publish_floor(_key(chain[0]), engine.search(chain[0],
                                                      THRESHOLDS[1]))
    store.compact()
    (marker_dir / "compacted").touch()
    store.gc()
    (marker_dir / "collected").touch()


def test_pinned_snapshot_is_bit_identical_under_concurrent_ingest(tmp_path):
    chain = _chain()
    store = SimilarityStore(tmp_path / "store")
    store.publish_floor(_key(chain[0]),
                        ApssEngine().search(chain[0], THRESHOLDS[0]))
    snapshot = store.open_snapshot()
    opened_view = _observe(snapshot)
    _assert_bit_complete(opened_view)
    assert opened_view[0] is not None

    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    context = mp.get_context("fork" if os.name == "posix" else "spawn")
    writer = context.Process(target=_ingest_writer,
                             args=(str(store.root), marker_dir))
    writer.start()
    mid_snapshot = None
    mid_view = None
    try:
        deadline = time.monotonic() + 120
        seen = set()
        while writer.is_alive() or len(seen) < GENERATIONS + 2:
            for marker in marker_dir.iterdir():
                seen.add(marker.name)
            # "During": the pinned view must never move, poll after poll.
            assert _observe(snapshot) == opened_view
            if mid_snapshot is None and "gen-2" in seen:
                mid_snapshot = store.open_snapshot()
                mid_view = _observe(mid_snapshot)
                _assert_bit_complete(mid_view)
            if mid_snapshot is not None:
                assert _observe(mid_snapshot) == mid_view
            if time.monotonic() > deadline:
                pytest.fail(f"writer stalled; markers seen: {sorted(seen)}")
            time.sleep(0.01)
        writer.join(timeout=60)
    finally:
        if writer.is_alive():
            writer.kill()
            writer.join(timeout=30)
    assert writer.exitcode == 0

    # "After": both pinned views survived ingest + lowering + compact + GC
    # bit-identically, and a fresh snapshot sees the final state.
    assert _observe(snapshot) == opened_view
    if mid_snapshot is not None:
        assert _observe(mid_snapshot) == mid_view
        mid_snapshot.close()
    snapshot.close()
    with store.open_snapshot() as fresh:
        final = _observe(fresh)
    _assert_bit_complete(final)
    # Compaction folded the chain: the tip resolves (consolidated), the
    # folded ancestors are gone from the current manifest by design.
    assert final[GENERATIONS] is not None
    store.gc()
    assert fsck(store.root, strict_orphans=True).ok
