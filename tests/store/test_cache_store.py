"""CachedApssEngine x SimilarityStore: spill, restore, reopen, delta-extend.

The acceptance property lives here: a reopened store serves a previously
swept threshold with **zero kernel invocations**, asserted through the
engine's ``search_calls`` instrumentation, and an appended dataset is served
by delta-extending the parent's floor rather than re-running the quadratic
kernel.
"""

from __future__ import annotations

import pytest

from harness import append_split, seeded_clustered
from repro.similarity import ApssEngine, CachedApssEngine
from repro.store import SimilarityStore


@pytest.fixture
def store(tmp_path) -> SimilarityStore:
    return SimilarityStore(tmp_path / "store")


def test_reopened_store_serves_sweep_with_zero_kernel_invocations(tmp_path):
    dataset = seeded_clustered(501, n_rows=40)
    warmup = CachedApssEngine(store=SimilarityStore(tmp_path))
    warmup.search(dataset, 0.2)
    assert warmup.engine.search_calls == 1

    # "New process": a fresh engine over a freshly opened store handle.
    engine = CachedApssEngine(store=SimilarityStore(tmp_path))
    for threshold in (0.3, 0.5, 0.8):
        served = engine.search(dataset, threshold)
        fresh = ApssEngine().search(dataset, threshold)
        assert served.pair_set() == fresh.pair_set()
        assert served.details["cache"]["hit"]
    assert engine.engine.search_calls == 0, \
        "a previously swept threshold must not touch the kernel"
    assert engine.store_restores == 1          # restored once, then memory
    assert (engine.hits, engine.misses) == (2, 1)


def test_lru_eviction_spills_to_store_and_restores(store):
    """An entry evicted by the memory bound comes back from the store —
    without a kernel invocation — instead of being recomputed."""
    datasets = [seeded_clustered(510 + i, n_rows=30) for i in range(3)]
    engine = CachedApssEngine(max_entries=2, store=store)
    for dataset in datasets:
        engine.search(dataset, 0.3)
    assert len(engine) == 2                    # first dataset evicted
    assert engine.engine.search_calls == 3

    result = engine.search(datasets[0], 0.5)   # restored, not recomputed
    assert engine.engine.search_calls == 3
    assert engine.store_restores == 1
    assert result.details["cache"]["source"] == "store"
    assert result.pair_set() == ApssEngine().search(datasets[0], 0.5).pair_set()
    assert len(engine) == 2                    # bound still holds


def test_store_keeps_the_loosest_floor(store):
    dataset = seeded_clustered(520, n_rows=30)
    engine = CachedApssEngine(store=store)
    engine.search(dataset, 0.2)                # loosest floor persisted
    engine.search(dataset, 0.6)                # tighter: must not overwrite
    reopened = CachedApssEngine(store=SimilarityStore(store.root))
    served = reopened.search(dataset, 0.4)     # only the 0.2 floor covers this
    assert served.details["cache"]["floor_threshold"] == pytest.approx(0.2)
    assert reopened.engine.search_calls == 0


def test_below_floor_probe_still_runs_and_lowers_the_stored_floor(store):
    dataset = seeded_clustered(530, n_rows=30)
    CachedApssEngine(store=store).search(dataset, 0.5)
    engine = CachedApssEngine(store=SimilarityStore(store.root))
    below = engine.search(dataset, 0.1)
    assert engine.engine.search_calls == 1     # genuinely below the floor
    assert "cache" not in below.details
    # The lower floor is persisted for the next process.
    third = CachedApssEngine(store=SimilarityStore(store.root))
    assert third.search(dataset, 0.2).details["cache"]["floor_threshold"] == \
        pytest.approx(0.1)


def test_append_is_served_by_delta_extension_not_recompute(store):
    dataset = seeded_clustered(540, n_rows=40)
    parent, child = append_split(dataset, 4)
    engine = CachedApssEngine(store=store)
    engine.search(parent, 0.3)
    assert engine.engine.search_calls == 1

    served = engine.search(child, 0.5)
    assert engine.engine.search_calls == 1, \
        "the append must not trigger a full kernel search"
    assert engine.delta_extensions == 1
    assert served.details["cache"]["source"] == "delta"
    assert served.pair_set() == ApssEngine().search(dataset, 0.5).pair_set()

    # The extended floor was persisted: a new process serves the child
    # dataset directly from the store.
    reopened = CachedApssEngine(store=SimilarityStore(store.root))
    again = reopened.search(child, 0.6)
    assert reopened.engine.search_calls == 0
    assert again.pair_set() == ApssEngine().search(dataset, 0.6).pair_set()


def test_delta_extension_works_across_processes_via_the_store(tmp_path):
    """Parent swept in 'process' one; child appended and probed in another."""
    dataset = seeded_clustered(550, n_rows=40)
    parent, child = append_split(dataset, 5)
    CachedApssEngine(store=SimilarityStore(tmp_path)).search(parent, 0.25)

    engine = CachedApssEngine(store=SimilarityStore(tmp_path))
    served = engine.search(child, 0.4)
    assert engine.engine.search_calls == 0
    assert engine.delta_extensions == 1
    assert served.pair_set() == ApssEngine().search(dataset, 0.4).pair_set()


def test_delta_extension_for_approximate_backends_stays_in_tier(store):
    """bayeslsh appends extend through its own seam — never splicing exact
    delta pairs into an estimate (the old dead-end recomputed instead)."""
    dataset = seeded_clustered(560, n_rows=40)
    parent, child = append_split(dataset, 4)
    engine = CachedApssEngine(store=store)
    engine.search(parent, 0.5, backend="bayeslsh")
    served = engine.search(child, 0.5, backend="bayeslsh")
    assert engine.delta_extensions == 1
    assert engine.engine.search_calls == 1     # only the parent sweep
    assert not served.exact                    # the tier never changes flavour
    fresh = ApssEngine().search(dataset, 0.5, backend="bayeslsh")
    assert served.pair_set() == fresh.pair_set()


def test_without_store_appends_fall_back_when_parent_floor_evicted():
    dataset = seeded_clustered(570, n_rows=40)
    parent, child = append_split(dataset, 4)
    engine = CachedApssEngine(max_entries=1, store=False)
    engine.search(parent, 0.3)
    engine.search(seeded_clustered(571, n_rows=20), 0.3)  # evicts the parent
    result = engine.search(child, 0.5)
    assert engine.delta_extensions == 0        # nothing left to extend
    assert engine.engine.search_calls == 3
    assert result.pair_set() == ApssEngine().search(dataset, 0.5).pair_set()


def test_env_var_attaches_a_store_automatically(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_APSS_STORE", str(tmp_path / "env-store"))
    dataset = seeded_clustered(580, n_rows=30)
    CachedApssEngine().search(dataset, 0.3)
    engine = CachedApssEngine()
    assert engine.store is not None
    engine.search(dataset, 0.5)
    assert engine.engine.search_calls == 0
    assert engine.store_restores == 1

    monkeypatch.delenv("REPRO_APSS_STORE")
    assert CachedApssEngine().store is None
    assert CachedApssEngine(store=False).store is None


def test_corrupt_store_entry_degrades_to_recompute(store):
    dataset = seeded_clustered(590, n_rows=30)
    CachedApssEngine(store=store).search(dataset, 0.3)
    # Corrupt the single persisted pairs entry on disk.
    [entry] = (store.root / "pairs").glob("*.entry")
    entry.write_bytes(entry.read_bytes()[:-7] + b"garbage")

    engine = CachedApssEngine(store=SimilarityStore(store.root))
    result = engine.search(dataset, 0.5)
    assert engine.engine.search_calls == 1     # fell back to the kernel
    assert engine.store.evictions == 1
    assert result.pair_set() == ApssEngine().search(dataset, 0.5).pair_set()
    # ... and the recomputed floor was re-persisted cleanly.
    reopened = CachedApssEngine(store=SimilarityStore(store.root))
    reopened.search(dataset, 0.5)
    assert reopened.engine.search_calls == 0
