"""The factorised pair-set store: round-trip fidelity, heuristic, fsck.

The contract under test is the decompression guarantee: for any stored
floor, ``from_pairs -> iter_pairs(threshold)`` is *bit-identical* to
filtering the raw floor — same pairs, same canonical ``(first, second)``
order, same float64 values — at every swept threshold, with zero kernel
work.  Around it: the size heuristic (small/clusterless floors stay raw),
the store's transparent ``pairs-factorized`` entry kind (landing, loading,
overwrite, eviction of damaged entries), the fsck audit of factorised
entries, and the acceptance criteria on a seeded clustered corpus.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import seeded_clustered
from repro.datasets import make_clustered_vectors
from repro.similarity import ApssEngine, CachedApssEngine
from repro.store import (
    MAX_FACTORIZE_RATIO,
    MIN_FACTORIZE_PAIRS,
    FactorizedPairSet,
    SimilarityStore,
    factorize_result,
    fsck,
    floor_axis,
    lineage_entry_key,
    maybe_factorize,
)

# --------------------------------------------------------------------- #
# Synthetic floors
# --------------------------------------------------------------------- #

def _synthetic_floor(seed: int, *, n_rows: int = 64, n_clusters: int = 3,
                     hole_frac: float = 0.1, n_noise: int = 40):
    """A clustered pair floor with holes and noise, from one seed.

    Rows are split into *n_clusters* disjoint groups; each group's pairs
    are present except a *hole_frac* random subset, and *n_noise* extra
    random pairs are sprinkled on top.  Returns canonical-order
    ``(first, second, value)`` arrays with values in ``[0.3, 1.0)``.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_rows)
    cuts = np.sort(rng.choice(np.arange(4, n_rows - 4), size=n_clusters - 1,
                              replace=False)) if n_clusters > 1 else []
    groups = np.split(perm[:n_rows - 4], cuts) if n_clusters > 1 \
        else [perm[:n_rows - 4]]
    pairs = set()
    for members in groups:
        members = np.sort(members)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if rng.random() >= hole_frac:
                    pairs.add((int(members[i]), int(members[j])))
    for _ in range(n_noise):
        a, b = rng.integers(0, n_rows, size=2)
        if a != b:
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    ordered = sorted(pairs)
    first = np.array([p[0] for p in ordered], dtype=np.int64)
    second = np.array([p[1] for p in ordered], dtype=np.int64)
    value = rng.uniform(0.3, 1.0, size=len(ordered))
    return first, second, value


def _tuples(pairs) -> list[tuple]:
    return [(p.first, p.second, p.similarity) for p in pairs]


def _raw_tuples(first, second, value, threshold=None) -> list[tuple]:
    """The reference decompression: filter + canonical lexsort, in numpy."""
    if threshold is not None:
        keep = value >= threshold
        first, second, value = first[keep], second[keep], value[keep]
    order = np.lexsort((second, first))
    return list(zip(first[order].tolist(), second[order].tolist(),
                    value[order].tolist()))


def _assert_roundtrip(first, second, value, *, n_rows, threshold):
    """from_pairs -> iter_pairs/pairs bit-identical to the raw floor."""
    pairset = FactorizedPairSet.from_pairs(first, second, value,
                                           n_rows=n_rows,
                                           threshold=threshold)
    assert pairset.n_pairs == len(first)
    raw = _raw_tuples(first, second, value)
    assert _tuples(pairset.iter_pairs()) == raw
    sweep = [threshold] if not len(value) else sorted(
        {threshold, float(np.median(value)), float(value.max()),
         float(value.max()) + 0.5})
    for t in sweep:
        expect = _raw_tuples(first, second, value, t)
        assert _tuples(pairset.iter_pairs(t)) == expect
        assert _tuples(pairset.pairs(t)) == expect
    # Serialise round trip: the npz payload rebuilds the same floor.
    rebuilt = FactorizedPairSet.from_arrays(pairset.to_arrays(),
                                            threshold=threshold)
    assert _tuples(rebuilt.iter_pairs()) == raw
    assert rebuilt.stats() == pairset.stats()
    return pairset


# --------------------------------------------------------------------- #
# Round-trip fidelity (property-based)
# --------------------------------------------------------------------- #

@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       n_clusters=st.integers(1, 5),
       hole_frac=st.floats(0.0, 0.5),
       n_noise=st.integers(0, 80))
def test_clustered_floor_roundtrip(seed, n_clusters, hole_frac, n_noise):
    first, second, value = _synthetic_floor(
        seed, n_clusters=n_clusters, hole_frac=hole_frac, n_noise=n_noise)
    pairset = _assert_roundtrip(first, second, value, n_rows=64,
                                threshold=0.3)
    if hole_frac == 0.0 and n_clusters >= 2 and n_noise == 0:
        assert pairset.n_cliques >= 1  # pure clusters must be discovered


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n_pairs=st.integers(0, 300))
def test_adversarial_clusterless_floor_roundtrip(seed, n_pairs):
    """Random sparse graphs (no cliques to find) still decompress exactly."""
    rng = np.random.default_rng(seed)
    n_rows = 400
    seen = set()
    while len(seen) < n_pairs:
        a, b = rng.integers(0, n_rows, size=2)
        if a != b:
            seen.add((min(int(a), int(b)), max(int(a), int(b))))
    ordered = sorted(seen)
    first = np.array([p[0] for p in ordered], dtype=np.int64)
    second = np.array([p[1] for p in ordered], dtype=np.int64)
    value = rng.uniform(0.3, 1.0, size=len(ordered))
    _assert_roundtrip(first, second, value, n_rows=n_rows, threshold=0.3)


@pytest.mark.parametrize("measure", ["cosine", "jaccard", "dot"])
def test_engine_floor_roundtrip_across_measures(measure):
    """Real engine floors (any measure) survive factorisation bit-exactly."""
    dataset = seeded_clustered(977, n_rows=90, n_features=12, n_clusters=4,
                               separation=5.0, cluster_std=0.7)
    threshold = {"cosine": 0.5, "jaccard": 0.4, "dot": 10.0}[measure]
    result = ApssEngine().search(dataset, threshold, measure)
    assert len(result.pairs) > 0
    first = np.array([p.first for p in result.pairs], dtype=np.int64)
    second = np.array([p.second for p in result.pairs], dtype=np.int64)
    value = np.array([p.similarity for p in result.pairs], dtype=np.float64)
    _assert_roundtrip(first, second, value, n_rows=dataset.n_rows,
                      threshold=threshold)


def test_empty_floor_roundtrip():
    empty = np.empty(0, dtype=np.int64)
    pairset = FactorizedPairSet.from_pairs(
        empty, empty, np.empty(0), n_rows=10, threshold=0.5)
    assert pairset.n_pairs == 0
    assert list(pairset.iter_pairs()) == []
    assert pairset.pairs() == []
    rebuilt = FactorizedPairSet.from_arrays(pairset.to_arrays(),
                                            threshold=0.5)
    assert rebuilt.n_pairs == 0


def test_iter_chunks_prunes_parts_below_threshold():
    """Part-level min/max pruning: chunks below the sweep never surface."""
    first, second, value = _synthetic_floor(7, n_clusters=3, hole_frac=0.0,
                                            n_noise=0)
    pairset = FactorizedPairSet.from_pairs(first, second, value, n_rows=64,
                                           threshold=0.3)
    above_max = float(value.max()) + 1.0
    assert list(pairset.iter_chunks(above_max)) == []
    total = sum(len(v) for _, _, v in pairset.iter_chunks(0.0))
    assert total == pairset.n_pairs


def test_from_pairs_rejects_malformed_input():
    one = np.array([1], dtype=np.int64)
    with pytest.raises(ValueError, match="upper-triangle"):
        FactorizedPairSet.from_pairs([2], [1], [0.5], n_rows=4,
                                     threshold=0.3)
    with pytest.raises(ValueError, match="out of range"):
        FactorizedPairSet.from_pairs([0], [9], [0.5], n_rows=4,
                                     threshold=0.3)
    with pytest.raises(ValueError, match="duplicate"):
        FactorizedPairSet.from_pairs([0, 0], [1, 1], [0.5, 0.6], n_rows=4,
                                     threshold=0.3)
    with pytest.raises(ValueError, match="equal length"):
        FactorizedPairSet.from_pairs(one, np.array([2, 3]), [0.5],
                                     n_rows=4, threshold=0.3)


# --------------------------------------------------------------------- #
# The size heuristic
# --------------------------------------------------------------------- #

def test_small_floors_are_never_factorized():
    first, second, value = _synthetic_floor(11, n_rows=30, n_clusters=2,
                                            n_noise=0)
    assert len(first) < MIN_FACTORIZE_PAIRS
    assert maybe_factorize(first, second, value, n_rows=30,
                           threshold=0.3) is None


def test_clusterless_floors_fall_back_to_raw():
    """Sparse random floors degenerate to all-residual and must not pay."""
    rng = np.random.default_rng(23)
    n_rows = 4000
    seen = set()
    while len(seen) < 2000:
        a, b = rng.integers(0, n_rows, size=2)
        if a != b:
            seen.add((min(int(a), int(b)), max(int(a), int(b))))
    ordered = sorted(seen)
    first = np.array([p[0] for p in ordered], dtype=np.int64)
    second = np.array([p[1] for p in ordered], dtype=np.int64)
    value = rng.uniform(0.3, 1.0, size=len(ordered))
    assert maybe_factorize(first, second, value, n_rows=n_rows,
                           threshold=0.3) is None
    # The degenerate factorisation really is worse than raw.
    degenerate = FactorizedPairSet.from_pairs(first, second, value,
                                              n_rows=n_rows, threshold=0.3)
    assert degenerate.compression_ratio() > MAX_FACTORIZE_RATIO


def test_clustered_floors_beat_the_ratio_bar():
    first, second, value = _synthetic_floor(31, n_rows=200, n_clusters=4,
                                            hole_frac=0.02, n_noise=50)
    assert len(first) >= MIN_FACTORIZE_PAIRS
    pairset = maybe_factorize(first, second, value, n_rows=200,
                              threshold=0.3)
    assert pairset is not None
    assert pairset.compression_ratio() <= MAX_FACTORIZE_RATIO
    assert pairset.nbytes() < pairset.raw_nbytes()


def test_factorize_result_always_streams():
    """Below the heuristic the wrapper is residual-only but still streams."""
    dataset = seeded_clustered(401, n_rows=20)
    result = ApssEngine().search(dataset, 0.3)
    pairset = factorize_result(result)
    assert pairset.n_cliques == 0 and pairset.n_blocks == 0
    assert _tuples(pairset.iter_pairs()) == _tuples(result.pairs)


# --------------------------------------------------------------------- #
# Structural validation of serialised payloads
# --------------------------------------------------------------------- #

@pytest.fixture
def valid_arrays():
    first, second, value = _synthetic_floor(53, n_rows=80, n_clusters=3,
                                            hole_frac=0.05, n_noise=60)
    pairset = FactorizedPairSet.from_pairs(first, second, value, n_rows=80,
                                           threshold=0.3)
    assert pairset.n_cliques >= 1 and pairset.n_residual >= 1
    return pairset.to_arrays()


def _mutated(arrays: dict, name: str, mutate) -> dict:
    out = {k: np.array(v, copy=True) for k, v in arrays.items()}
    out[name] = mutate(out[name])
    return out


def test_from_arrays_rejects_structural_damage(valid_arrays):
    cases = [
        ("member_offsets", lambda a: a + 1,
         "do not tile"),
        ("member_offsets", lambda a: np.array([0, 1], dtype=np.int64),
         "member"),  # undersized segment or bad tiling
        ("members", lambda a: a[::-1].copy(),
         "sorted|range"),
        ("clique_values", lambda a: a[:-1],
         "clique_values length"),
        ("residual_second", lambda a: a + 10**6,
         "out of range"),
        ("residual_value", lambda a: a[:-1],
         "equal length"),
        ("shape", lambda a: np.array([-1], dtype=np.int64),
         "row count"),
    ]
    for name, mutate, pattern in cases:
        with pytest.raises(ValueError, match=pattern):
            FactorizedPairSet.from_arrays(_mutated(valid_arrays, name,
                                                   mutate), threshold=0.3)


def test_from_arrays_rejects_missing_and_swapped_residual(valid_arrays):
    incomplete = {k: v for k, v in valid_arrays.items()
                  if k != "block_values"}
    with pytest.raises(ValueError, match="missing arrays"):
        FactorizedPairSet.from_arrays(incomplete, threshold=0.3)
    swapped = {k: np.array(v, copy=True) for k, v in valid_arrays.items()}
    swapped["residual_first"], swapped["residual_second"] = \
        swapped["residual_second"], swapped["residual_first"]
    with pytest.raises(ValueError, match="upper-triangle"):
        FactorizedPairSet.from_arrays(swapped, threshold=0.3)


def test_from_arrays_rejects_unordered_residual(valid_arrays):
    shuffled = {k: np.array(v, copy=True) for k, v in valid_arrays.items()}
    for name in ("residual_first", "residual_second", "residual_value"):
        shuffled[name] = shuffled[name][::-1].copy()
    with pytest.raises(ValueError, match="canonical order|upper-triangle"):
        FactorizedPairSet.from_arrays(shuffled, threshold=0.3)


# --------------------------------------------------------------------- #
# Store integration: the pairs-factorized entry kind
# --------------------------------------------------------------------- #

KEY = ("fingerprint", "cosine", "exact-blocked", ())


@pytest.fixture
def store(tmp_path) -> SimilarityStore:
    return SimilarityStore(tmp_path / "store")


def _big_clustered_result(seed: int = 613, n_rows: int = 400,
                          threshold: float = 0.6):
    dataset = seeded_clustered(seed, n_rows=n_rows, n_features=12,
                               n_clusters=6, separation=6.0,
                               cluster_std=0.6)
    result = ApssEngine().search(dataset, threshold)
    assert len(result.pairs) >= MIN_FACTORIZE_PAIRS
    return dataset, result


def test_large_clustered_floor_lands_factorized(store):
    _, result = _big_clustered_result()
    store.save_result(KEY, result)
    assert store.entry_count("pairs-factorized") == 1
    assert store.entry_count("pairs") == 0
    loaded = store.load_result(KEY)
    assert loaded is not None
    assert _tuples(loaded.pairs) == _tuples(result.pairs)
    assert (loaded.threshold, loaded.n_rows, loaded.exact) == \
        (result.threshold, result.n_rows, result.exact)


def test_small_floor_stays_raw(store):
    dataset = seeded_clustered(617, n_rows=25)
    result = ApssEngine().search(dataset, 0.3)
    store.save_result(KEY, result)
    assert store.entry_count("pairs") == 1
    assert store.entry_count("pairs-factorized") == 0
    assert _tuples(store.load_result(KEY).pairs) == _tuples(result.pairs)


def test_overwrite_switches_kind_and_deletes_sibling(store):
    _, big = _big_clustered_result()
    small = ApssEngine().search(seeded_clustered(619, n_rows=25), 0.3)
    store.save_result(KEY, big)
    store.save_result(KEY, small)  # factorized -> raw
    assert store.entry_count("pairs") == 1
    assert store.entry_count("pairs-factorized") == 0
    assert _tuples(store.load_result(KEY).pairs) == _tuples(small.pairs)
    store.save_result(KEY, big)    # raw -> factorized
    assert store.entry_count("pairs") == 0
    assert store.entry_count("pairs-factorized") == 1
    assert _tuples(store.load_result(KEY).pairs) == _tuples(big.pairs)


def test_load_pairset_reports_encoding_and_coverage(store):
    _, big = _big_clustered_result(threshold=0.6)
    store.save_result(KEY, big)
    stored = store.load_pairset(KEY)
    assert stored is not None
    assert stored.encoding == "factorized"
    assert stored.n_rows == big.n_rows
    assert stored.covers(0.6) and stored.covers(0.9)
    assert not stored.covers(0.5)  # floor starts above the query
    assert _tuples(stored.pairset.iter_pairs(0.8)) == \
        [t for t in _tuples(big.pairs) if t[2] >= 0.8]

    small = ApssEngine().search(seeded_clustered(619, n_rows=25), 0.3)
    store.save_result(KEY, small)
    stored = store.load_pairset(KEY)
    assert stored is not None and stored.encoding == "raw"
    assert _tuples(stored.pairset.iter_pairs()) == _tuples(small.pairs)


def test_load_pairset_misses_cleanly(store):
    assert store.load_pairset(KEY) is None
    assert store.misses == 1


def _corrupt_file(path, mutate):
    raw = bytearray(path.read_bytes())
    mutate(raw)
    path.write_bytes(bytes(raw))


@pytest.mark.parametrize("damage", ["flip", "truncate"])
def test_damaged_factorized_entry_is_evicted_never_served(store, damage):
    _, result = _big_clustered_result()
    store.save_result(KEY, result)
    path = store._path("pairs-factorized", KEY)
    if damage == "flip":
        _corrupt_file(path, lambda raw: raw.__setitem__(-200,
                                                        raw[-200] ^ 0xFF))
    else:
        path.write_bytes(path.read_bytes()[:len(path.read_bytes()) // 2])
    assert store.load_result(KEY) is None
    assert store.evictions == 1
    assert not path.exists()
    # And load_pairset takes the same evict-and-miss path.
    store.save_result(KEY, result)
    _corrupt_file(store._path("pairs-factorized", KEY),
                  lambda raw: raw.__setitem__(-200, raw[-200] ^ 0xFF))
    assert store.load_pairset(KEY) is None
    assert store.evictions == 2


def test_structurally_invalid_factorized_entry_is_evicted(store):
    """A checksum-valid but structurally broken payload still never serves."""
    _, result = _big_clustered_result()
    store.save_result(KEY, result)
    arrays, meta = store.get("pairs-factorized", KEY)
    arrays = dict(arrays)
    arrays["member_offsets"] = arrays["member_offsets"] + 1
    store.put("pairs-factorized", KEY, arrays, meta)
    assert store.load_result(KEY) is None
    assert store.evictions == 1
    store.put("pairs-factorized", KEY, arrays, meta)
    assert store.load_pairset(KEY) is None
    assert store.evictions == 2


def test_store_stats_counts_factorized_entries(store):
    _, result = _big_clustered_result()
    store.save_result(KEY, result)
    store.save_sketches(KEY, np.arange(12, dtype=np.int64).reshape(3, 4))
    stats = store.stats()
    assert stats["kinds"]["pairs-factorized"]["entries"] == 1
    assert stats["kinds"]["pairs-factorized"]["bytes"] > 0
    assert stats["kinds"]["sketches"]["entries"] == 1
    assert stats["entries"] == 2
    assert stats["bytes"] >= sum(k["bytes"] for k in stats["kinds"].values())
    # Factorised entries are really smaller than the raw equivalent.
    raw_bytes = 24 * len(result.pairs)
    assert stats["kinds"]["pairs-factorized"]["bytes"] < raw_bytes


# --------------------------------------------------------------------- #
# fsck: factorised entries are audited
# --------------------------------------------------------------------- #

def test_fsck_passes_on_healthy_factorized_store(store):
    dataset, result = _big_clustered_result()
    key = (dataset.fingerprint(), "cosine", result.backend, ())
    store.save_result(key, result)
    store.publish_floor(key, result)
    report = fsck(store.root)
    assert report.ok, (report.errors, report.warnings)
    assert report.stats.get("floor_entries_checked", 0) >= 1
    assert report.stats.get("floor_entries_invalid", 0) == 0


def test_fsck_flags_damaged_factorized_floor_entry(store):
    _, result = _big_clustered_result()
    store.save_result(KEY, result)
    _corrupt_file(store._path("pairs-factorized", KEY),
                  lambda raw: raw.__setitem__(-100, raw[-100] ^ 0xFF))
    report = fsck(store.root)
    assert report.stats.get("floor_entries_invalid", 0) == 1
    assert any("evicted" in line for line in report.warnings)


def test_fsck_flags_structurally_invalid_lineage_entry(store):
    """A factorised lineage floor that fails structural decode is an error."""
    dataset, result = _big_clustered_result()
    key = (dataset.fingerprint(), "cosine", result.backend, ())
    store.publish_floor(key, result)
    record = store.manifest().generation(dataset.fingerprint())
    ref = record.floors[floor_axis(key)]
    entry_key = lineage_entry_key(ref.sequence, dataset.fingerprint(),
                                  floor_axis(key))
    arrays, meta = store.get("lineage", entry_key)
    assert meta.get("encoding") == "factorized"
    arrays = dict(arrays)
    arrays["member_offsets"] = arrays["member_offsets"] + 1
    store.put("lineage", entry_key, arrays, meta)
    report = fsck(store.root)
    assert not report.ok
    assert any("structural decode" in line for line in report.errors)
    # And the read path degrades to a miss, never a wrong answer.
    with store.open_snapshot() as snapshot:
        assert snapshot.load_result(key) is None


# --------------------------------------------------------------------- #
# Zero-kernel serving through the cached engine
# --------------------------------------------------------------------- #

def test_factorized_floor_serves_sweeps_with_zero_kernel_calls(tmp_path):
    dataset, _ = _big_clustered_result()
    warm = CachedApssEngine(store=SimilarityStore(tmp_path / "store"))
    reference = warm.search(dataset, 0.6)
    assert warm.store.entry_count("pairs-factorized") == 1
    # A fresh engine over the same store: every sweep at or above the
    # landed threshold is answered from the compressed floor.
    cold = CachedApssEngine(store=SimilarityStore(tmp_path / "store"))
    for threshold in (0.6, 0.75, 0.9):
        served = cold.search(dataset, threshold)
        assert _tuples(served.pairs) == \
            [t for t in _tuples(reference.pairs) if t[2] >= threshold]
    assert cold.engine.search_calls == 0


# --------------------------------------------------------------------- #
# Acceptance: the seeded clustered corpus criteria (tier-1 scale)
# --------------------------------------------------------------------- #

def _acceptance(tmp_path, *, n_rows: int):
    from repro.service import SimilarityService
    from repro.similarity.streaming import TopKReducer

    dataset = make_clustered_vectors(n_rows, 16, 12, separation=6.0,
                                     cluster_std=0.6, seed=42)
    engine = ApssEngine()
    raw = engine.search(dataset, 0.6)
    pairset = factorize_result(raw)

    # 1. Compression: <= 0.5x raw pair-entry bytes.
    assert pairset.nbytes() <= 0.5 * 24 * len(raw.pairs)

    # 2. Bit-identical at every swept threshold, zero kernel invocations.
    calls_before = engine.search_calls
    for threshold in (0.6, 0.7, 0.8, 0.9):
        expect = [t for t in _tuples(raw.pairs) if t[2] >= threshold]
        assert _tuples(pairset.pairs(threshold)) == expect
    assert _tuples(pairset.iter_pairs(0.85)) == \
        [t for t in _tuples(raw.pairs) if t[2] >= 0.85]
    assert engine.search_calls == calls_before

    # 3. Store round trip serves the same floor kernel-free.
    cold = CachedApssEngine(store=SimilarityStore(tmp_path / "store"))
    cold.search(dataset, 0.6)
    assert cold.store.entry_count("pairs-factorized") == 1
    reopened = CachedApssEngine(store=SimilarityStore(tmp_path / "store"))
    assert _tuples(reopened.search(dataset, 0.7).pairs) == \
        [t for t in _tuples(raw.pairs) if t[2] >= 0.7]
    assert reopened.engine.search_calls == 0

    # 4. top_k_join equals a raw-floor TopKReducer pass.
    reference = TopKReducer(25)
    reference.update(
        np.array([p.first for p in raw.pairs], dtype=np.int64),
        np.array([p.second for p in raw.pairs], dtype=np.int64),
        np.array([p.similarity for p in raw.pairs]))
    with SimilarityService(tmp_path / "svc") as service:
        session = service.open_session("acceptance")
        session.sweep(dataset, 0.6)
        joined = session.top_k_join(dataset, 25, 0.6)
        assert joined.source == "store-factorized"
        assert _tuples(joined.pairs) == _tuples(reference.pairs())
        assert service.engine.search_calls == 1  # only the sweep


def test_acceptance_clustered_corpus(tmp_path):
    _acceptance(tmp_path, n_rows=1200)


@pytest.mark.slow
def test_acceptance_clustered_corpus_full_scale(tmp_path):
    """The literal ISSUE criterion: >= 5000 rows."""
    _acceptance(tmp_path, n_rows=5000)
