"""Parity and correctness of the incremental (append-delta) APSS path.

The headline property: for every *exact* backend in the registry, searching
a parent dataset, appending rows, and delta-extending the parent result
yields pair sets **identical** to a from-scratch search on the concatenated
dataset — across seeds, measures, thresholds and split sizes.  The
approximate ``bayeslsh`` backend is excluded by construction (its pair sets
are estimates; the delta path refuses to splice exact pairs into them, and
that refusal is itself tested).

Reducer delta-maintenance is checked the same way: feeding only the delta
values into reducer state restored from the parent pass must equal a
from-scratch streaming pass over the child.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from harness import append_split, seeded_clustered, seeded_corpus
from repro.similarity import (
    ApssEngine,
    HistogramReducer,
    SelectionSketch,
    TopKReducer,
    available_backends,
    get_backend_class,
    top_k_pairs,
)
from repro.similarity.backends.sharded import ShardedBlockedBackend
from repro.similarity.streaming import (
    iter_similarity_blocks,
    streaming_similarity_histogram,
    thresholds_for_edge_counts,
)
from repro.store import DeltaApssBackend, delta_pairs

ENGINE = ApssEngine()

EXACT_BACKENDS = [name for name in available_backends()
                  if get_backend_class(name).exact]

#: Keep multi-process backends in-process for the property sweep.
_FAST_OPTIONS = {"sharded-blocked": {"n_workers": 1}}


def _options(backend: str) -> dict:
    return dict(_FAST_OPTIONS.get(backend, {}))


# --------------------------------------------------------------------- #
# The parity property
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@settings(max_examples=12, deadline=None, derandomize=True)
@given(seed=st.integers(0, 40),
       measure=st.sampled_from(["cosine", "jaccard", "dot"]),
       threshold=st.floats(0.05, 0.9),
       k=st.integers(1, 10))
def test_append_plus_delta_merge_equals_from_scratch(backend, seed, measure,
                                                     threshold, k):
    impl = get_backend_class(backend)(**_options(backend))
    assume(impl.supports(measure))
    dataset = seeded_clustered(seed, n_rows=26, n_features=8)
    parent, child = append_split(dataset, k)

    base = ENGINE.search(parent, threshold, measure, backend=backend,
                         **_options(backend))
    extended = DeltaApssBackend().extend(base, child)
    scratch = ENGINE.search(dataset, threshold, measure, backend=backend,
                            **_options(backend))

    assert extended.pair_set() == scratch.pair_set(), \
        f"{backend} delta merge diverged on {dataset.name}"
    merged = extended.similarities()
    for pair, similarity in scratch.similarities().items():
        assert merged[pair] == pytest.approx(similarity, abs=1e-9)
    # Canonical order survives the merge.
    keys = [(p.first, p.second) for p in extended.pairs]
    assert keys == sorted(keys)
    assert extended.n_rows == dataset.n_rows
    assert extended.exact


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
def test_sparse_append_parity(backend):
    """Same property on a sparse jaccard corpus, one spot check per backend."""
    dataset = seeded_corpus(77, n_docs=40)
    parent, child = append_split(dataset, 6)
    base = ENGINE.search(parent, 0.2, "jaccard", backend=backend,
                         **_options(backend))
    extended = DeltaApssBackend().extend(base, child)
    scratch = ENGINE.search(dataset, 0.2, "jaccard", backend=backend,
                            **_options(backend))
    assert extended.pair_set() == scratch.pair_set()


def test_delta_pairs_only_touch_new_rows():
    dataset = seeded_clustered(11, n_rows=24)
    parent, child = append_split(dataset, 5)
    pairs = delta_pairs(child, child.parent_delta, 0.0, "cosine")
    boundary = child.parent_delta.parent_rows
    assert pairs, "threshold 0 must admit cross pairs"
    assert all(p.second >= boundary for p in pairs), \
        "every delta pair involves an appended row"
    assert all(p.first < p.second for p in pairs)
    # Exactly (old x new) + (new x new) pairs at threshold <= min similarity.
    pairs_all = delta_pairs(child, child.parent_delta, -2.0, "cosine")
    d = child.parent_delta.n_new
    assert len(pairs_all) == boundary * d + d * (d - 1) // 2


# --------------------------------------------------------------------- #
# Guard rails: stale or mismatched state must be refused
# --------------------------------------------------------------------- #

def test_extend_refuses_approximate_parents():
    dataset = seeded_clustered(13, n_rows=24)
    parent, child = append_split(dataset, 4)
    base = ENGINE.search(parent, 0.5, "cosine", backend="bayeslsh")
    with pytest.raises(ValueError, match="approximate"):
        DeltaApssBackend().extend(base, child)


def test_extend_refuses_mismatched_parent_rows():
    dataset = seeded_clustered(14, n_rows=24)
    parent, child = append_split(dataset, 4)
    shrunk = parent.subset(range(parent.n_rows - 1))
    base = ENGINE.search(shrunk, 0.5)
    with pytest.raises(ValueError, match="rows"):
        DeltaApssBackend().extend(base, child)


def test_extend_refuses_content_drift():
    """A dataset mutated after the append must not be merged silently."""
    dataset = seeded_clustered(15, n_rows=24)
    parent, child = append_split(dataset, 4)
    base = ENGINE.search(parent, 0.5)
    child.data[0] += 1.0  # drift: content no longer matches the delta
    with pytest.raises(ValueError, match="fingerprint"):
        DeltaApssBackend().extend(base, child)


def test_extend_requires_a_delta():
    dataset = seeded_clustered(16, n_rows=24)
    base = ENGINE.search(dataset, 0.5)
    with pytest.raises(ValueError, match="delta"):
        DeltaApssBackend().extend(base, dataset)


# --------------------------------------------------------------------- #
# Reducer delta-maintenance: stored state + delta pass == from scratch
# --------------------------------------------------------------------- #

def _upper_values(dataset, measure):
    values = []
    for rows, slab in iter_similarity_blocks(dataset, measure):
        row_ids = np.arange(rows.start, rows.stop)
        keep = np.arange(slab.shape[1])[None, :] > row_ids[:, None]
        values.append(slab[keep])
    return np.concatenate(values) if values else np.empty(0)


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_histogram_delta_maintenance(measure):
    dataset = seeded_clustered(21, n_rows=30)
    parent, child = append_split(dataset, 6)
    edges = np.linspace(-1.0, 1.0, 41)

    reducer = HistogramReducer(edges)
    reducer.update(_upper_values(parent, measure))
    # Round-trip through state() like the store does, then delta-update.
    restored = HistogramReducer.from_state(reducer.state())
    DeltaApssBackend().extend_reducers(child, measure=measure,
                                       histogram=restored)

    full_counts, _ = streaming_similarity_histogram(dataset, bins=edges,
                                                    measure=measure)
    assert np.array_equal(restored.counts, full_counts)


def test_top_k_delta_maintenance():
    dataset = seeded_clustered(22, n_rows=30)
    parent, child = append_split(dataset, 6)

    reducer = TopKReducer(15)
    for rows, slab in iter_similarity_blocks(parent, "cosine"):
        reducer.update_slab(rows, slab)
    restored = TopKReducer.from_state(reducer.state())
    DeltaApssBackend().extend_reducers(child, measure="cosine",
                                      top_k=restored)

    assert [p.as_tuple() for p in restored.pairs()] == \
        [p.as_tuple() for p in top_k_pairs(dataset, 15)]


def test_selection_sketch_delta_maintenance():
    dataset = seeded_clustered(23, n_rows=30)
    parent, child = append_split(dataset, 6)

    sketch = SelectionSketch.for_measure(parent, "cosine", n_bins=256)
    sketch.update(_upper_values(parent, "cosine"))
    restored = SelectionSketch.from_state(sketch.state())
    DeltaApssBackend().extend_reducers(child, measure="cosine",
                                       selection=restored)

    fresh = SelectionSketch.for_measure(dataset, "cosine", n_bins=256)
    fresh.update(_upper_values(dataset, "cosine"))
    assert np.array_equal(restored.counts, fresh.counts)
    assert restored.lowest == fresh.lowest
    assert restored.highest == fresh.highest
    n = dataset.n_rows
    assert restored.total == n * (n - 1) // 2
    # The sketch's bounded answer brackets the exact order statistic.
    target = 40
    exact = thresholds_for_edge_counts(dataset, [target], n_bins=256)[0]
    approx = restored.approx_threshold_for_edge_count(target)
    width = restored.edges[1] - restored.edges[0]
    assert approx <= exact <= approx + width


# --------------------------------------------------------------------- #
# Store-aware sharded ingest: the delta pass over the worker pool
# --------------------------------------------------------------------- #

SHARDED_VARIANTS = [
    pytest.param(options, id="-".join(
        f"{key}={value}" for key, value in sorted(options.items())))
    for options in ShardedBlockedBackend.parity_variants()
]


@pytest.mark.parametrize("variant", SHARDED_VARIANTS)
@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=st.integers(0, 30),
       measure=st.sampled_from(["cosine", "jaccard", "dot"]),
       threshold=st.floats(0.05, 0.9),
       k=st.integers(1, 10))
def test_sharded_delta_ingest_matches_single_process_extend(
        variant, seed, measure, threshold, k):
    """The headline ingest property: fanning the Δn x n cross block over the
    worker pool (any worker count, either transport) produces a merged floor
    byte-identical to the single-process DeltaApssBackend.extend."""
    dataset = seeded_clustered(seed, n_rows=26, n_features=8)
    parent, child = append_split(dataset, k)
    base = ENGINE.search(parent, threshold, measure)

    single = DeltaApssBackend().extend(base, child)
    sharded = DeltaApssBackend(block_rows=3, **variant).extend(base, child)

    assert [p.as_tuple() for p in sharded.pairs] == \
        [p.as_tuple() for p in single.pairs], \
        f"sharded ingest diverged on {dataset.name} with {variant}"
    assert sharded.details["delta"]["new_pairs"] == \
        single.details["delta"]["new_pairs"]


def test_sharded_ingest_under_adversarial_shard_orders():
    """Replayed out-of-order shard completions cannot perturb the merged
    floor or the merged reducer state."""
    from harness import replay_factory

    dataset = seeded_clustered(31, n_rows=40)
    parent, child = append_split(dataset, 12)
    base = ENGINE.search(parent, 0.2)
    expected = DeltaApssBackend().extend(base, child)

    for order in ("lifo", ("random", 5), [3, 0, 2, 1]):
        factory = replay_factory(order=order)
        got = DeltaApssBackend(block_rows=2, n_workers=2,
                               executor_factory=factory).extend(base, child)
        executor = factory.created[0]
        assert executor.submitted > 1
        assert sorted(executor.completion_order) == \
            list(range(executor.submitted))
        assert [p.as_tuple() for p in got.pairs] == \
            [p.as_tuple() for p in expected.pairs]


@pytest.mark.parametrize("n_workers", [2, 4])
def test_sharded_reducer_extension_matches_single_process(n_workers):
    """Shard-local reducer states fold through merge() into exactly the
    state a single-process delta pass produces."""
    dataset = seeded_clustered(33, n_rows=34)
    parent, child = append_split(dataset, 9)
    edges = np.linspace(-1.0, 1.0, 33)

    def warmed():
        histogram = HistogramReducer(edges)
        selection = SelectionSketch.for_measure(parent, "cosine", n_bins=128)
        top_k = TopKReducer(12)
        histogram.update(_upper_values(parent, "cosine"))
        selection.update(_upper_values(parent, "cosine"))
        for rows, slab in iter_similarity_blocks(parent, "cosine"):
            top_k.update_slab(rows, slab)
        return histogram, selection, top_k

    single_h, single_s, single_t = warmed()
    DeltaApssBackend().extend_reducers(
        child, measure="cosine", histogram=single_h, selection=single_s,
        top_k=single_t)

    sharded_h, sharded_s, sharded_t = warmed()
    DeltaApssBackend(block_rows=3, n_workers=n_workers).extend_reducers(
        child, measure="cosine", histogram=sharded_h, selection=sharded_s,
        top_k=sharded_t)

    assert np.array_equal(sharded_h.counts, single_h.counts)
    assert np.array_equal(sharded_s.counts, single_s.counts)
    assert sharded_s.lowest == single_s.lowest
    assert sharded_s.highest == single_s.highest
    assert [p.as_tuple() for p in sharded_t.pairs()] == \
        [p.as_tuple() for p in single_t.pairs()]


def test_sharded_ingest_fault_surfaces_and_spares_the_parent_floor(tmp_path):
    """A worker fault mid-ingest (through a real process boundary) surfaces
    as ShardExecutionError — and because ingest never mutates parent state,
    the parent's persisted floor survives byte-identical and no child entry
    appears: the crash-mid-ingest atomicity contract."""
    from repro.similarity.backends.sharded import ShardExecutionError
    from repro.store import SimilarityStore

    dataset = seeded_clustered(35, n_rows=40)
    parent, child = append_split(dataset, 10)
    base = ENGINE.search(parent, 0.2)

    store = SimilarityStore(tmp_path / "ingest-store")
    parent_key = (parent.fingerprint(), "cosine", "exact-blocked", ())
    child_key = (child.fingerprint(), "cosine", "exact-blocked", ())
    store.save_result(parent_key, base)

    faulty = DeltaApssBackend(block_rows=2, n_workers=2,
                              inject_shard_fault=0)
    with pytest.raises(ShardExecutionError):
        extended = faulty.extend(base, child)
        store.save_result(child_key, extended)  # never reached

    restored = store.load_result(parent_key)
    assert restored is not None
    assert restored.pair_set() == base.pair_set()
    assert store.load_result(child_key) is None

    # A healthy retry lands the complete child floor in one atomic write.
    good = DeltaApssBackend(n_workers=2).extend(base, child)
    store.save_result(child_key, good)
    landed = store.load_result(child_key)
    assert landed.pair_set() == ENGINE.search(dataset, 0.2).pair_set()


def test_sharded_ingest_rejects_out_of_range_fault_targets():
    dataset = seeded_clustered(36, n_rows=24)
    parent, child = append_split(dataset, 4)
    base = ENGINE.search(parent, 0.3)
    with pytest.raises(ValueError, match="out of range"):
        DeltaApssBackend(n_workers=1, inject_shard_fault=99).extend(base, child)


def test_empty_append_sharded_extension_is_a_no_op():
    dataset = seeded_clustered(37, n_rows=20)
    child = dataset.append_rows([])
    base = ENGINE.search(dataset, 0.3)
    extended = DeltaApssBackend(n_workers=2).extend(base, child)
    assert extended.pair_set() == base.pair_set()


def test_reducer_merge_is_order_insensitive():
    """merge() folds shard-local reducers in any order to the same result."""
    dataset = seeded_clustered(24, n_rows=28)
    values = _upper_values(dataset, "cosine")
    chunks = np.array_split(values, 4)
    edges = np.linspace(-1.0, 1.0, 21)

    for order in ([0, 1, 2, 3], [3, 1, 0, 2]):
        merged = HistogramReducer(edges)
        for index in order:
            part = HistogramReducer(edges)
            part.update(chunks[index])
            merged.merge(part)
        whole = HistogramReducer(edges)
        whole.update(values)
        assert np.array_equal(merged.counts, whole.counts)

    top_expected = [p.as_tuple() for p in top_k_pairs(dataset, 10)]
    for order in ([0, 1], [1, 0]):
        halves = []
        boundary = dataset.n_rows // 2
        for which in (0, 1):
            part = TopKReducer(10)
            for rows, slab in iter_similarity_blocks(dataset, "cosine"):
                if (rows.start < boundary) == (which == 0):
                    part.update_slab(rows, slab)
            halves.append(part)
        merged = TopKReducer(10)
        for index in order:
            merged.merge(halves[index])
        assert [p.as_tuple() for p in merged.pairs()] == top_expected
