"""Upgrade-only landing lattice for two-tier store entries.

The store-boundary rule behind two-tier serving
(:meth:`SimilarityStore.land_result`): entries only ever move *up* the
quality lattice ``rank = (exact, -threshold)`` — an exact result replaces a
parked estimate regardless of threshold, an estimate never replaces an
exact floor, and a same-flavour write needs a strictly looser threshold.

A hypothesis suite interleaves approximate landings, exact upgrades,
process restarts (a fresh :class:`SimilarityStore` over the same root) and
open snapshot pins, asserting after every step that the entry's rank is
monotone non-decreasing, that a refused landing leaves the entry
byte-identical, and that no open snapshot's view ever moves.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import EngineResult, SimilarPair
from repro.store import SimilarityStore, fsck

KEY = ("fp-tier-upgrade", "cosine", "exact-blocked", ())
LOOSE, TIGHT = 0.3, 0.6
_SIMS = [(0, 1, 0.9), (0, 2, 0.7), (1, 2, 0.5), (2, 3, 0.35)]


def _result(threshold: float, exact: bool) -> EngineResult:
    pairs = [SimilarPair(i, j, s) for i, j, s in _SIMS if s >= threshold]
    details = {}
    if not exact:
        pairs = pairs[:-1]  # the estimate misses its boundary pair
        details = {"epsilon": 0.03, "recall_bound": 0.97}
    return EngineResult(
        backend="exact-blocked" if exact else "bayeslsh", measure="cosine",
        threshold=threshold, n_rows=4, pairs=pairs, exact=exact,
        seconds=0.0, n_candidates=6, n_pruned=6 - len(pairs),
        details=details)


def _rank(entry: EngineResult) -> tuple:
    return (entry.exact, -entry.threshold)


def _canonical(entry: EngineResult | None):
    if entry is None:
        return None
    return (entry.exact, entry.threshold,
            sorted(p.as_tuple() for p in entry.pairs))


_OPS = st.lists(
    st.sampled_from(["approx_loose", "approx_tight", "exact_loose",
                     "exact_tight", "reopen", "snapshot"]),
    min_size=4, max_size=14)

_CANDIDATES = {
    "approx_loose": _result(LOOSE, exact=False),
    "approx_tight": _result(TIGHT, exact=False),
    "exact_loose": _result(LOOSE, exact=True),
    "exact_tight": _result(TIGHT, exact=True),
}


@settings(max_examples=25, deadline=None, derandomize=True)
@given(_OPS)
def test_interleaved_landings_never_downgrade(tmp_path_factory, ops):
    root = tmp_path_factory.mktemp("upgrade") / "store"
    store = SimilarityStore(root)
    snapshots = []  # [(snapshot, view-at-open)]
    try:
        for op in ops:
            before = store.load_result(KEY)
            if op == "reopen":
                # Process restart: a fresh store over the same root must
                # see the identical entry.
                store = SimilarityStore(root)
                assert _canonical(store.load_result(KEY)) == \
                    _canonical(before)
                continue
            if op == "snapshot":
                snapshot = store.open_snapshot()
                snapshots.append((snapshot, _canonical(
                    snapshot.load_result(KEY))))
                continue
            candidate = _CANDIDATES[op]
            entry_path = store._path("pairs", KEY)
            before_bytes = (entry_path.read_bytes()
                            if entry_path.exists() else None)
            landed = store.land_result(KEY, candidate)
            after = store.load_result(KEY)
            assert after is not None
            if before is not None:
                # THE invariant: rank is monotone, strictly so on a landing.
                if landed:
                    assert _rank(after) > _rank(before)
                else:
                    assert _rank(after) == _rank(before)
                    assert entry_path.read_bytes() == before_bytes, \
                        f"refused landing {op!r} still mutated the entry"
                assert after.exact >= before.exact, "exact entry downgraded"
            if landed:
                assert _canonical(after) == _canonical(candidate)
            # Open pins never observe the churn in the live pairs dir.
            for snapshot, opened_view in snapshots:
                assert _canonical(snapshot.load_result(KEY)) == opened_view, \
                    f"pinned snapshot v{snapshot.version} moved after {op!r}"
        assert fsck(store.root).ok
    finally:
        for snapshot, _ in snapshots:
            snapshot.close()


# --------------------------------------------------------------------- #
# The full deterministic transition matrix
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("first,second,lands", [
    # estimate -> exact: lands regardless of threshold direction
    ("approx_loose", "exact_tight", True),
    ("approx_tight", "exact_loose", True),
    ("approx_loose", "exact_loose", True),
    # exact -> estimate: refused regardless of threshold direction
    ("exact_tight", "approx_loose", False),
    ("exact_loose", "approx_tight", False),
    # same flavour: strictly looser lands, tighter-or-equal refused
    ("approx_tight", "approx_loose", True),
    ("approx_loose", "approx_tight", False),
    ("approx_loose", "approx_loose", False),
    ("exact_tight", "exact_loose", True),
    ("exact_loose", "exact_tight", False),
    ("exact_loose", "exact_loose", False),
])
def test_landing_transition_matrix(tmp_path, first, second, lands):
    store = SimilarityStore(tmp_path / "store")
    assert store.land_result(KEY, _CANDIDATES[first])
    assert store.land_result(KEY, _CANDIDATES[second]) is lands
    final = store.load_result(KEY)
    expected = _CANDIDATES[second if lands else first]
    assert _canonical(final) == _canonical(expected)


def test_upgrade_survives_process_restarts(tmp_path):
    root = tmp_path / "store"
    SimilarityStore(root).land_result(KEY, _CANDIDATES["approx_loose"])
    # restart, upgrade to exact
    assert SimilarityStore(root).land_result(KEY, _CANDIDATES["exact_tight"])
    # restart again: the exact entry holds, estimates bounce off it forever
    revived = SimilarityStore(root)
    assert revived.land_result(KEY, _CANDIDATES["approx_loose"]) is False
    assert revived.load_result(KEY).exact


def test_estimates_never_enter_lineage(tmp_path):
    """publish_floor routes estimates through land_result but never records
    them in the MVCC lineage — there is no version to pin an estimate to."""
    store = SimilarityStore(tmp_path / "store")
    version_before = store.lineage.current().version
    store.publish_floor(KEY, _CANDIDATES["approx_loose"])
    assert store.lineage.current().version == version_before
    assert not store.load_result(KEY).exact          # ...but it is parked
    store.publish_floor(KEY, _CANDIDATES["exact_loose"])
    assert store.lineage.current().version > version_before
