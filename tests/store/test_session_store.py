"""PlasmaSession x SimilarityStore: cross-process resume and append merging.

Covers the session-level persistence contract: knowledge caches and sketch
matrices round-trip through the store, a re-opened session resumes (and its
probes reuse cached hash state), an appended dataset resumes from its
parent's knowledge, and the Cumulative APSS Graph reflects merged state.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import append_split, seeded_clustered
from repro.core import CumulativeApssGraph, KnowledgeCache, PlasmaSession
from repro.similarity.types import SimilarPair
from repro.store import SimilarityStore


@pytest.fixture
def store(tmp_path) -> SimilarityStore:
    return SimilarityStore(tmp_path / "store")


def _session(dataset, store=None, **kwargs):
    kwargs.setdefault("n_hashes", 64)
    kwargs.setdefault("seed", 5)
    return PlasmaSession(dataset, store=store, **kwargs)


# --------------------------------------------------------------------- #
# KnowledgeCache state round trip and merge
# --------------------------------------------------------------------- #

def test_knowledge_cache_state_round_trip(store):
    dataset = seeded_clustered(601, n_rows=30)
    session = _session(dataset)
    session.probe(0.6)
    state = session.cache.state()
    restored = KnowledgeCache.from_state(state)
    assert len(restored) == len(session.cache)
    assert restored.probed_thresholds == session.cache.probed_thresholds
    for cached in session.cache.pairs():
        twin = restored.get(cached.pair)
        assert twin is not None
        assert twin.n_hashes == cached.n_hashes
        assert twin.matches == cached.matches
        assert twin.estimate == pytest.approx(cached.estimate)
        assert twin.variance == pytest.approx(cached.variance)


def test_knowledge_cache_merge_upgrades_by_hash_count():
    first = KnowledgeCache()
    second = KnowledgeCache()

    class _Eval:
        def __init__(self, first_, second_, n_hashes):
            self.first, self.second = first_, second_
            self.n_hashes, self.matches = n_hashes, n_hashes // 2
            self.estimate, self.variance = 0.5, 0.01

    first.record(_Eval(0, 1, 16))
    second.record(_Eval(0, 1, 64))   # more evidence
    second.record(_Eval(2, 3, 8))
    first.merge(second)
    assert first.get((0, 1)).n_hashes == 64
    assert first.get((2, 3)).n_hashes == 8
    # Merge is upgrade-only: folding the weaker cache back changes nothing.
    second.merge(first)
    assert second.get((0, 1)).n_hashes == 64


def test_merge_exact_pairs_feeds_the_graph_but_not_bayeslsh_resume():
    cache = KnowledgeCache()
    cache.merge_exact_pairs([SimilarPair(0, 1, 0.9), SimilarPair(1, 2, 0.2)])
    assert len(cache) == 2
    # Aggregate views see the exact knowledge ...
    graph = CumulativeApssGraph(cache, thresholds=[0.5])
    assert graph.estimate(0.5).expected_pairs == pytest.approx(1.0, abs=1e-6)
    # ... but hash-state lookup must not fabricate evidence.
    assert cache.lookup((0, 1)) is None
    assert cache.hashes_saved == 0

    # A later hash-based evaluation must not downgrade exact knowledge.
    class _Eval:
        first, second = 0, 1
        n_hashes, matches = 64, 40
        estimate, variance = 0.62, 0.01

    cache.record(_Eval())
    kept = cache.get((0, 1))
    assert kept.estimate == pytest.approx(0.9)
    assert kept.variance <= 1e-12


def test_exact_and_estimated_knowledge_merge_commutatively():
    """B.merge(A) and A.merge(B) must agree: exact knowledge wins both ways."""

    class _Eval:
        first, second = 0, 1
        n_hashes, matches = 64, 32
        estimate, variance = 0.5, 0.01

    def exact_cache():
        cache = KnowledgeCache()
        cache.merge_exact_pairs([SimilarPair(0, 1, 0.9)])
        return cache

    def estimated_cache():
        cache = KnowledgeCache()
        cache.record(_Eval())
        return cache

    forwards = exact_cache()
    forwards.merge(estimated_cache())
    backwards = estimated_cache()
    backwards.merge(exact_cache())
    for merged in (forwards, backwards):
        assert merged.get((0, 1)).estimate == pytest.approx(0.9)
        assert merged.get((0, 1)).n_hashes == 0


# --------------------------------------------------------------------- #
# Cross-"process" session resume
# --------------------------------------------------------------------- #

def test_session_resumes_from_a_reopened_store(store):
    dataset = seeded_clustered(610, n_rows=40)
    cold = _session(dataset, store=store)
    probe = cold.probe(0.7)

    warm = _session(dataset, store=SimilarityStore(store.root))
    assert warm.resumed_from == "store"
    assert len(warm.cache) == len(cold.cache)
    # Sketches restored byte-for-byte, with no rebuild cost.
    assert warm.sketch_store.build_seconds == 0.0
    assert np.array_equal(warm.sketch_store.sketches,
                          cold.sketch_store.sketches)
    reprobe = warm.probe(0.7)
    assert reprobe.cached_hash_reuse > 0, "resumed probes must reuse hashes"
    assert reprobe.pair_count == probe.pair_count
    assert reprobe.sketch_seconds == 0.0


def test_session_resume_respects_configuration_keys(store):
    dataset = seeded_clustered(611, n_rows=30)
    _session(dataset, store=store).probe(0.7)
    other_seed = _session(dataset, store=SimilarityStore(store.root), seed=6)
    assert other_seed.resumed_from == "fresh", \
        "a different sketch seed must not inherit incompatible hash state"
    other_hashes = _session(dataset, store=SimilarityStore(store.root),
                            n_hashes=32)
    assert other_hashes.resumed_from == "fresh"


def test_appended_dataset_resumes_from_parent_session(store):
    dataset = seeded_clustered(620, n_rows=40)
    parent, child = append_split(dataset, 5)
    parent_session = _session(parent, store=store)
    parent_session.probe(0.6)

    child_session = _session(child, store=SimilarityStore(store.root))
    assert child_session.resumed_from == "parent"
    assert len(child_session.cache) == len(parent_session.cache)
    # Incremental sketching: identical to a from-scratch build over the child.
    fresh = _session(child)
    assert np.array_equal(child_session.sketch_store.sketches,
                          fresh.sketch_store.sketches)
    assert child_session.sketch_store.build_seconds == 0.0

    # Probing the child covers the new rows; old-pair knowledge is reused.
    probe = child_session.probe(0.6)
    assert probe.cached_hash_reuse > 0
    expected = fresh.probe(0.6)
    assert probe.pair_count == expected.pair_count

    # Once the child has its own persisted state, it resumes from itself.
    again = _session(child, store=SimilarityStore(store.root))
    assert again.resumed_from == "store"


def test_mid_session_extend_keeps_knowledge_and_sketches_incrementally(store):
    """extend_dataset appends rows without discarding the session: knowledge
    survives (old pairs stay valid under an append), and with a store the
    next probe sketches only the new rows — bit-identical to a rebuild."""
    dataset = seeded_clustered(650, n_rows=40)
    parent, child = append_split(dataset, 6)
    tail = dataset.subset(range(parent.n_rows, dataset.n_rows))

    session = _session(parent, store=store)
    session.probe(0.6)
    knowledge_before = len(session.cache)
    assert knowledge_before > 0

    extended = session.extend_dataset(tail, name=child.name)
    assert extended.fingerprint() == child.fingerprint()
    assert extended.parent_delta.parent_rows == parent.n_rows
    assert session.dataset is extended
    assert len(session.cache) == knowledge_before, \
        "an append must not discard per-pair knowledge"

    probe = session.probe(0.6)
    assert probe.cached_hash_reuse > 0, "old-pair hash state must be reused"
    # Incremental sketching through the store: only the 6 new rows were
    # sketched, yet the matrix equals a from-scratch build over the child.
    fresh = _session(child)
    assert np.array_equal(session.sketch_store.sketches,
                          fresh.sketch_store.sketches)
    assert session.sketch_store.build_seconds == 0.0
    assert probe.pair_count == fresh.probe(0.6).pair_count

    # The post-append session persisted under the child fingerprint: a new
    # process opening the same store resumes from it directly.
    reopened = _session(child, store=SimilarityStore(store.root))
    assert reopened.resumed_from == "store"


def test_mid_session_extend_without_store_still_probes_correctly():
    dataset = seeded_clustered(651, n_rows=36)
    parent, child = append_split(dataset, 5)
    tail = dataset.subset(range(parent.n_rows, dataset.n_rows))

    session = _session(parent)
    session.probe(0.6)
    session.extend_dataset(tail, name=child.name)
    probe = session.probe(0.6)
    fresh = _session(child)
    assert probe.pair_count == fresh.probe(0.6).pair_count


def test_cumulative_graph_reflects_merged_append_state(store):
    dataset = seeded_clustered(630, n_rows=36)
    parent, child = append_split(dataset, 6)
    parent_session = _session(parent, store=store)
    parent_session.probe(0.5)

    child_session = _session(child, store=SimilarityStore(store.root))
    child_session.probe(0.5)
    merged_graph = child_session.cumulative_graph(thresholds=[0.5, 0.7])

    fresh = _session(child)
    fresh.probe(0.5)
    fresh_graph = fresh.cumulative_graph(thresholds=[0.5, 0.7])

    for threshold in (0.5, 0.7):
        merged = merged_graph.estimate(threshold)
        scratch = fresh_graph.estimate(threshold)
        # Resumed sessions may hold *more* evidence (deeper posteriors from
        # the parent's probe), so expected counts agree to a few pairs.
        assert merged.expected_pairs == pytest.approx(
            scratch.expected_pairs, rel=0.1, abs=3.0)


def test_session_without_store_is_untouched(tmp_path):
    dataset = seeded_clustered(640, n_rows=30)
    session = _session(dataset)
    assert session.store is None
    assert session.resumed_from == "fresh"
    session.probe(0.7)
    assert not list(tmp_path.iterdir()), "no store directory side effects"
