"""Robustness tests for the persistent similarity store.

The store's contract is "validated or evicted, never trusted": every failure
mode injected here — flipped payload bytes, truncation, a wrong magic
string, a schema bump, a key collision — must surface as a clean miss with
the offending entry deleted, and concurrent multi-process use of one store
directory must never produce a torn read.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from harness import seeded_clustered
from repro.similarity import ApssEngine
from repro.store import SCHEMA_VERSION, SimilarityStore, StoreAttachError
from repro.store.similarity_store import _MAGIC


@pytest.fixture
def store(tmp_path) -> SimilarityStore:
    return SimilarityStore(tmp_path / "store")


KEY = ("fingerprint", "cosine", "exact-blocked", ())


def _entry_path(store: SimilarityStore, kind: str = "pairs",
                key: tuple = KEY) -> Path:
    return store._path(kind, key)


def _write_sample(store: SimilarityStore, key: tuple = KEY):
    dataset = seeded_clustered(301, n_rows=30)
    result = ApssEngine().search(dataset, 0.3)
    store.save_result(key, result)
    return result


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #

def test_engine_result_round_trip(store):
    saved = _write_sample(store)
    loaded = store.load_result(KEY)
    assert loaded is not None
    assert loaded.threshold == saved.threshold
    assert loaded.backend == saved.backend
    assert loaded.n_rows == saved.n_rows
    assert loaded.exact is saved.exact
    assert [p.as_tuple() for p in loaded.pairs] == \
        [p.as_tuple() for p in saved.pairs]
    assert loaded.seconds == 0.0  # restored results report no kernel time


def test_missing_entry_is_a_plain_miss(store):
    assert store.load_result(("nothing", "here", "at-all", ())) is None
    assert (store.hits, store.misses, store.evictions) == (0, 1, 0)


def test_raw_entry_round_trip_preserves_arrays_and_meta(store):
    arrays = {"a": np.arange(7, dtype=np.int64), "b": np.linspace(0, 1, 5)}
    store.put("reducers", KEY, arrays, {"kind": "histogram", "n": 7})
    loaded = store.get("reducers", KEY)
    assert loaded is not None
    got_arrays, meta = loaded
    assert np.array_equal(got_arrays["a"], arrays["a"])
    assert np.array_equal(got_arrays["b"], arrays["b"])
    assert meta == {"kind": "histogram", "n": 7}


def test_reducer_state_round_trip(store):
    from repro.similarity import HistogramReducer

    reducer = HistogramReducer(np.linspace(0, 1, 11))
    reducer.update(np.array([0.05, 0.15, 0.95]))
    store.save_reducer(KEY, reducer.state())
    restored = HistogramReducer.from_state(store.load_reducer(KEY))
    assert np.array_equal(restored.counts, reducer.counts)
    assert np.array_equal(restored.edges, reducer.edges)


def test_sketch_round_trip(store):
    sketches = np.arange(24, dtype=np.int64).reshape(6, 4)
    store.save_sketches(KEY, sketches)
    assert np.array_equal(store.load_sketches(KEY), sketches)


def test_overwrite_replaces_entry(store):
    dataset = seeded_clustered(302, n_rows=25)
    lo = ApssEngine().search(dataset, 0.2)
    hi = ApssEngine().search(dataset, 0.6)
    store.save_result(KEY, hi)
    store.save_result(KEY, lo)
    assert store.load_result(KEY).threshold == lo.threshold
    assert store.entry_count("pairs") == 1


# --------------------------------------------------------------------- #
# Corruption and incompatibility: evict, never trust
# --------------------------------------------------------------------- #

def _corrupt(path: Path, mutate) -> None:
    raw = bytearray(path.read_bytes())
    mutate(raw)
    path.write_bytes(bytes(raw))


def test_corrupted_payload_is_evicted(store):
    _write_sample(store)
    path = _entry_path(store)
    # Flip bits near the end of the file: inside the checksummed payload.
    _corrupt(path, lambda raw: raw.__setitem__(len(raw) - 10,
                                               raw[len(raw) - 10] ^ 0xFF))
    assert store.load_result(KEY) is None
    assert store.evictions == 1
    assert not path.exists(), "corrupt entries must be deleted"
    # The slot is reusable afterwards.
    _write_sample(store)
    assert store.load_result(KEY) is not None


@pytest.mark.parametrize("mutate, reason", [
    (lambda raw: raw.__delitem__(slice(len(raw) - 20, None)), "truncated"),
    (lambda raw: raw.__setitem__(slice(0, 5), b"BOGUS"), "bad magic"),
    (lambda raw: raw.__setitem__(slice(0, len(raw)), b""), "emptied"),
])
def test_damaged_entries_are_evicted(store, mutate, reason):
    _write_sample(store)
    path = _entry_path(store)
    _corrupt(path, mutate)
    assert store.load_result(KEY) is None, reason
    assert not path.exists(), reason
    assert store.evictions == 1


def test_schema_version_mismatch_is_evicted(store):
    _write_sample(store)
    path = _entry_path(store)
    raw = path.read_bytes()
    header_end = raw.index(b"\n", len(_MAGIC))
    header = json.loads(raw[len(_MAGIC):header_end])
    assert header["schema"] == SCHEMA_VERSION
    header["schema"] = SCHEMA_VERSION + 1
    path.write_bytes(_MAGIC + json.dumps(header).encode() + b"\n"
                     + raw[header_end + 1:])
    assert store.load_result(KEY) is None
    assert store.evictions == 1
    assert not path.exists(), "incompatible schema versions must be evicted"


def test_key_mismatch_is_evicted(store):
    """An entry whose recorded key differs from the lookup key (filename
    collision, manual copy) is stale by definition: evict."""
    _write_sample(store)
    other = ("other-fingerprint", "cosine", "exact-blocked", ())
    other_path = _entry_path(store, key=other)
    other_path.parent.mkdir(parents=True, exist_ok=True)
    other_path.write_bytes(_entry_path(store).read_bytes())
    assert store.load_result(other) is None
    assert store.evictions == 1
    assert not other_path.exists()
    # The original, untouched entry still validates.
    assert store.load_result(KEY) is not None


def test_eviction_never_raises_when_file_already_gone(store):
    _write_sample(store)
    path = _entry_path(store)
    _corrupt(path, lambda raw: raw.__setitem__(len(raw) - 1, 0))
    path.unlink()  # a concurrent process evicted first
    assert store.load_result(KEY) is None


# --------------------------------------------------------------------- #
# Concurrent two-process access to one store directory
# --------------------------------------------------------------------- #

_WORKER = """
import sys
import numpy as np
from repro.store import SimilarityStore

root, worker_id, n_entries = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = SimilarityStore(root)
# Interleave writes and reads against keys both workers hammer.
for round_ in range(n_entries):
    key = ("shared", round_ % 5)
    payload = np.full(64, worker_id * 1000 + round_, dtype=np.int64)
    store.put("reducers", key, {"values": payload},
              {"worker": worker_id, "round": round_})
    loaded = store.get("reducers", key)
    if loaded is not None:
        arrays, meta = loaded
        values = arrays["values"]
        # Torn reads are the failure mode: a validated entry must be one
        # worker's complete payload, never a mixture.
        assert len(set(values.tolist())) == 1, "torn entry observed"
        assert values[0] == meta["worker"] * 1000 + meta["round"]
print("ok", store.hits + store.misses)
"""


def test_two_processes_share_one_store_directory(tmp_path):
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    root = tmp_path / "shared-store"
    procs = [
        subprocess.Popen([sys.executable, "-c", _WORKER, str(root),
                          str(worker), "40"],
                         env=env, stdout=subprocess.PIPE,
                         stderr=subprocess.PIPE, text=True)
        for worker in (1, 2)]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert out.startswith("ok")
    # Whatever survived the races must still validate from a third opener.
    store = SimilarityStore(root)
    for slot in range(5):
        loaded = store.get("reducers", ("shared", slot))
        assert loaded is not None
        arrays, meta = loaded
        assert len(set(arrays["values"].tolist())) == 1
    assert store.evictions == 0


def test_from_env_reads_the_env_var(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_APSS_STORE", raising=False)
    assert SimilarityStore.from_env() is None
    monkeypatch.setenv("REPRO_APSS_STORE", str(tmp_path / "env-store"))
    store = SimilarityStore.from_env()
    assert store is not None
    assert store.root == tmp_path / "env-store"


def test_from_env_rejects_an_unusable_path_eagerly(tmp_path, monkeypatch):
    """A bad ``REPRO_APSS_STORE`` must fail at attach time with an error
    naming the variable — not on the first spill deep inside a search."""
    # A path whose parent is a regular file cannot be created, even by root
    # (chmod-based unwritability is unreliable under privileged CI users).
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where a directory is needed")
    monkeypatch.setenv("REPRO_APSS_STORE", str(blocker / "store"))
    with pytest.raises(StoreAttachError, match="REPRO_APSS_STORE"):
        SimilarityStore.from_env()


def test_cached_engine_surfaces_a_bad_store_env_at_construction(
        tmp_path, monkeypatch):
    from repro.similarity.cache import CachedApssEngine

    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    monkeypatch.setenv("REPRO_APSS_STORE", str(blocker / "store"))
    with pytest.raises(StoreAttachError, match="REPRO_APSS_STORE"):
        CachedApssEngine()


# --------------------------------------------------------------------- #
# Evictions are observable (structured logging)
# --------------------------------------------------------------------- #

def test_corruption_driven_eviction_emits_a_structured_warning(store,
                                                               caplog):
    _write_sample(store)
    path = _entry_path(store)
    _corrupt(path, lambda raw: raw.__setitem__(len(raw) - 10,
                                               raw[len(raw) - 10] ^ 0xFF))
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.load_result(KEY) is None
    assert store.evictions == 1
    [record] = [r for r in caplog.records
                if "evicting" in r.getMessage()]
    message = record.getMessage()
    assert record.name == "repro.store"
    assert "pairs" in message          # the entry kind
    assert "fingerprint" in message    # the lookup key
    assert "checksum" in message       # the failure kind


def test_clean_operations_emit_no_eviction_warnings(store, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        _write_sample(store)
        assert store.load_result(KEY) is not None
        assert store.load_result(("absent", "cosine", "exact-blocked",
                                  ())) is None
    assert [r for r in caplog.records if "evicting" in r.getMessage()] == []
