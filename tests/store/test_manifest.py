"""Unit battery for the MVCC lineage layer of the similarity store.

Covers the versioned manifest (publish, generations, delta landings), the
snapshot-isolation contract of :meth:`SimilarityStore.open_snapshot`,
delta-chain compaction (including the acceptance criterion: folding a
k-step chain is byte-identical to the single-shot floor and runs **zero**
kernel searches), pin-aware garbage collection, the ``fsck`` invariant
auditor and the export/attach replication path.  Two-process and crash
variants live in ``test_snapshot_isolation.py`` and
``test_concurrent_ingest.py``.
"""

from __future__ import annotations

import json

import pytest

from harness import append_split, seeded_clustered
from repro.core.session import PlasmaSession
from repro.similarity import ApssEngine
from repro.similarity.cache import CachedApssEngine
from repro.store import (
    DeltaApssBackend,
    SimilarityStore,
    StoreAttachError,
    fsck,
    floor_axis,
)

THRESHOLD = 0.3


@pytest.fixture
def store(tmp_path) -> SimilarityStore:
    return SimilarityStore(tmp_path / "store")


def _key(dataset):
    return (dataset.fingerprint(), "cosine", "exact-blocked", ())


def _chain(seed: int, base_rows: int = 24, batch: int = 4, k: int = 3):
    """A deterministic append chain: ``k`` generations over a base."""
    full = seeded_clustered(seed, n_rows=base_rows + k * batch,
                            separation=4.0)
    chain = [full.subset(range(base_rows), name="gen-0")]
    for generation in range(1, k + 1):
        stop = base_rows + generation * batch
        rows = full.subset(range(stop - batch, stop))
        chain.append(chain[-1].append_rows(rows, name=f"gen-{generation}"))
    return chain


def _publish_chain(store, chain, engine=None, threshold=THRESHOLD):
    """Land the whole chain: base as full, every child as a delta."""
    engine = engine or ApssEngine()
    floor = engine.search(chain[0], threshold)
    store.publish_floor(_key(chain[0]), floor)
    delta_backend = DeltaApssBackend(n_workers=1)
    for child in chain[1:]:
        store.publish_generation(
            child.fingerprint(), parent=child.parent_delta.parent_fingerprint,
            n_rows=child.n_rows, parent_rows=child.parent_delta.parent_rows)
        floor = delta_backend.extend(floor, child)
        store.publish_floor(_key(child), floor, delta=child.parent_delta)
    return floor


def _canonical(result):
    return [(p.first, p.second, p.similarity)
            for p in sorted(result.pairs, key=lambda p: (p.first, p.second))]


# --------------------------------------------------------------------- #
# Publishing and the manifest graph
# --------------------------------------------------------------------- #

def test_publish_floor_lands_full_entry_and_advances_manifest(store):
    dataset = seeded_clustered(901)
    result = ApssEngine().search(dataset, THRESHOLD)
    assert store.manifest().version == 0
    manifest = store.publish_floor(_key(dataset), result)
    assert manifest.version == 1
    record = manifest.generation(dataset.fingerprint())
    assert record is not None and record.parent is None
    [ref] = record.floors.values()
    assert ref.kind == "full" and ref.threshold == THRESHOLD
    # The legacy mutable entry is written too (spill/restore still works).
    assert store.load_result(_key(dataset)) is not None


def test_child_with_delta_lands_only_the_new_pairs(store):
    dataset = seeded_clustered(902, n_rows=28)
    parent, child = append_split(dataset, 5)
    engine = ApssEngine()
    store.publish_floor(_key(parent), engine.search(parent, THRESHOLD))
    extended = DeltaApssBackend(n_workers=1).extend(
        engine.search(parent, THRESHOLD), child)
    manifest = store.publish_floor(_key(child), extended,
                                   delta=child.parent_delta)
    record = manifest.generation(child.fingerprint())
    assert record.parent == parent.fingerprint()
    [ref] = record.floors.values()
    assert ref.kind == "delta"
    arrays, meta = store.read_entry_file(
        store.root / ref.file, "lineage",
        ("lineage", ref.sequence, child.fingerprint(),
         floor_axis(_key(child))))
    assert meta["parent_rows"] == parent.n_rows
    assert all(second >= parent.n_rows for second in arrays["second"])


def test_delta_landing_falls_back_to_full_without_parent_floor(store):
    dataset = seeded_clustered(903, n_rows=28)
    parent, child = append_split(dataset, 5)
    extended = DeltaApssBackend(n_workers=1).extend(
        ApssEngine().search(parent, THRESHOLD), child)
    # The parent generation never published a floor: a delta entry would be
    # unresolvable, so the landing must be full.
    manifest = store.publish_floor(_key(child), extended,
                                   delta=child.parent_delta)
    [ref] = manifest.generation(child.fingerprint()).floors.values()
    assert ref.kind == "full"


def test_chain_resolution_matches_from_scratch_search(store):
    chain = _chain(904, k=3)
    _publish_chain(store, chain)
    scratch = ApssEngine().search(chain[-1], THRESHOLD)
    with store.open_snapshot() as snapshot:
        resolved = snapshot.load_result(_key(chain[-1]))
    assert resolved is not None
    assert resolved.details["lineage"]["chain_length"] == 4
    assert _canonical(resolved) == _canonical(scratch)


def test_publish_generation_creates_missing_parent_record(store):
    manifest = store.publish_generation("child-fp", parent="parent-fp",
                                        n_rows=30, parent_rows=24)
    assert manifest.generation("parent-fp").n_rows == 24
    assert manifest.generation("child-fp").parent == "parent-fp"
    # Re-publishing the same link is a no-op, not a version bump.
    again = store.publish_generation("child-fp", parent="parent-fp",
                                     n_rows=30, parent_rows=24)
    assert again.version == manifest.version


# --------------------------------------------------------------------- #
# Snapshot isolation (in-process)
# --------------------------------------------------------------------- #

def test_snapshot_is_immune_to_later_publishes(store):
    chain = _chain(905, k=2)
    engine = ApssEngine()
    base_floor = engine.search(chain[0], THRESHOLD)
    store.publish_floor(_key(chain[0]), base_floor)
    snapshot = store.open_snapshot()
    before = snapshot.load_result(_key(chain[0]))

    # Concurrent "ingest": new generation, lower floor, compaction, GC.
    floor = DeltaApssBackend(n_workers=1).extend(base_floor, chain[1])
    store.publish_generation(chain[1].fingerprint(),
                             parent=chain[0].fingerprint(),
                             n_rows=chain[1].n_rows,
                             parent_rows=chain[0].n_rows)
    store.publish_floor(_key(chain[1]), floor, delta=chain[1].parent_delta)
    store.publish_floor(_key(chain[0]), engine.search(chain[0], 0.1))
    store.compact()
    store.gc()

    after = snapshot.load_result(_key(chain[0]))
    assert snapshot.load_result(_key(chain[1])) is None  # not in its world
    assert _canonical(after) == _canonical(before)
    assert after.threshold == before.threshold == THRESHOLD
    snapshot.close()
    with pytest.raises(ValueError):
        snapshot.load_result(_key(chain[0]))


def test_cached_engine_snapshot_reads_are_pinned(store):
    dataset = seeded_clustered(906)
    engine = ApssEngine()
    store.publish_floor(_key(dataset), engine.search(dataset, THRESHOLD))
    snapshot = store.open_snapshot()
    cached = CachedApssEngine(snapshot=snapshot)
    served = cached.search(dataset, THRESHOLD)
    assert served.details["cache"]["source"] == "snapshot"
    # A looser floor published after the snapshot must stay invisible: a
    # tighter-than-pinned-floor probe goes to the kernel, not the store.
    store.publish_floor(_key(dataset), engine.search(dataset, 0.05))
    cached.clear()
    assert cached.search(dataset, 0.1).details.get("cache") is None
    snapshot.close()


def test_cached_engine_publishes_kernel_floors_to_the_lineage(store):
    dataset = seeded_clustered(907)
    with store.open_snapshot() as snapshot:
        cached = CachedApssEngine(snapshot=snapshot)
        cached.search(dataset, THRESHOLD)
    manifest = store.manifest()
    assert manifest.generation(dataset.fingerprint()) is not None
    with store.open_snapshot() as fresh:
        assert fresh.load_result(_key(dataset)) is not None


# --------------------------------------------------------------------- #
# Compaction (the acceptance criterion)
# --------------------------------------------------------------------- #

def test_compact_folds_chain_byte_identical_with_zero_kernel_calls(store):
    chain = _chain(908, k=3)
    engine = ApssEngine()
    _publish_chain(store, chain, engine=engine)
    single_shot = engine.search(chain[-1], THRESHOLD)
    calls_before = engine.search_calls

    stats = store.compact()
    assert engine.search_calls == calls_before, \
        "compaction must be pure pair merging — no kernel invocations"
    assert stats.chains_folded == 1
    assert stats.generations_dropped == len(chain) - 1

    manifest = store.manifest()
    assert manifest.version == stats.manifest_version
    record = manifest.generation(chain[-1].fingerprint())
    assert record.parent is None
    [ref] = record.floors.values()
    assert ref.kind == "full"
    resolved = store._resolve_manifest_floor(
        manifest, chain[-1].fingerprint(), floor_axis(_key(chain[-1])))
    assert _canonical(resolved) == _canonical(single_shot)
    assert resolved.threshold == single_shot.threshold
    assert resolved.n_rows == single_shot.n_rows
    # Idempotent: a second pass finds nothing to fold.
    assert store.compact().unchanged


def test_compact_leaves_single_generation_chains_alone(store):
    dataset = seeded_clustered(909)
    store.publish_floor(_key(dataset), ApssEngine().search(dataset,
                                                           THRESHOLD))
    stats = store.compact()
    assert stats.unchanged
    assert store.manifest().generation(dataset.fingerprint()) is not None


# --------------------------------------------------------------------- #
# Garbage collection and pins
# --------------------------------------------------------------------- #

def test_gc_respects_live_pins_and_reclaims_after_close(store):
    chain = _chain(910, k=2)
    _publish_chain(store, chain)
    snapshot = store.open_snapshot()
    store.compact()

    held = store.gc()
    assert snapshot.version in held.retained_versions
    assert snapshot.load_result(_key(chain[-1])) is not None  # still whole

    snapshot.close()
    released = store.gc()
    assert released.retained_versions == (store.manifest().version,)
    assert released.files_removed > 0
    report = fsck(store.root, strict_orphans=True)
    assert report.ok, report.errors


def test_gc_prunes_stale_pin_files_from_dead_processes(store):
    dataset = seeded_clustered(911)
    store.publish_floor(_key(dataset), ApssEngine().search(dataset,
                                                           THRESHOLD))
    # A pin file with no live flock holder is what a SIGKILL-ed reader
    # leaves behind; GC must treat it as stale, not as a leaked lease.
    pin_dir = store.lineage.dir / "pins"
    pin_dir.mkdir(parents=True, exist_ok=True)
    stale = pin_dir / "v00000001-99999999-deadbeef.pin"
    stale.write_text(json.dumps({"version": 1, "pid": 2 ** 22 + 12345}))
    store.gc()
    assert not stale.exists()


def test_size_bounded_gc_compacts_first(store):
    chain = _chain(912, k=3)
    _publish_chain(store, chain)
    stats = store.gc(max_lineage_bytes=1)
    assert stats.compacted
    record = store.manifest().generation(chain[-1].fingerprint())
    assert record.parent is None  # the chain was folded on the way


# --------------------------------------------------------------------- #
# fsck: the invariant auditor
# --------------------------------------------------------------------- #

def test_fsck_passes_on_healthy_and_empty_stores(store):
    assert fsck(store.root).ok
    _publish_chain(store, _chain(913, k=2))
    report = fsck(store.root)
    assert report.ok, report.errors
    assert report.stats["resolved_delta_floors"] >= 1


def test_fsck_flags_corrupt_and_missing_referenced_entries(store):
    _publish_chain(store, _chain(914, k=1))
    manifest = store.manifest()
    files = sorted(manifest.files())
    target = store.root / files[0]
    target.write_bytes(target.read_bytes()[:40])  # truncate: checksum dies
    report = fsck(store.root)
    assert not report.ok
    assert any("validation" in error for error in report.errors)
    target.unlink()
    report = fsck(store.root)
    assert any("missing entry" in error for error in report.errors)


def test_fsck_reports_orphans_as_warnings_then_errors_when_strict(store):
    dataset = seeded_clustered(915)
    store.publish_floor(_key(dataset), ApssEngine().search(dataset,
                                                           THRESHOLD))
    orphan = store.root / "lineage" / "0123456789abcdef.entry"
    orphan.write_bytes(b"debris")
    relaxed = fsck(store.root)
    assert relaxed.ok and any("orphan" in w for w in relaxed.warnings)
    strict = fsck(store.root, strict_orphans=True)
    assert not strict.ok
    # GC reclaims the debris, after which strict mode passes again.
    store.gc()
    assert fsck(store.root, strict_orphans=True).ok


def test_fsck_cli_tool_exits_nonzero_on_broken_store(store):
    import subprocess
    import sys
    from pathlib import Path

    tool = Path(__file__).parents[2] / "tools" / "fsck_store.py"
    _publish_chain(store, _chain(916, k=1))
    healthy = subprocess.run([sys.executable, str(tool), str(store.root)],
                             capture_output=True, text=True)
    assert healthy.returncode == 0, healthy.stdout + healthy.stderr
    (store.root / sorted(store.manifest().files())[0]).unlink()
    broken = subprocess.run(
        [sys.executable, str(tool), str(store.root), "--json"],
        capture_output=True, text=True)
    assert broken.returncode == 1
    assert "missing entry" in broken.stdout


# --------------------------------------------------------------------- #
# Export / attach (cross-host replication)
# --------------------------------------------------------------------- #

def test_export_attach_serves_identical_floors(store, tmp_path):
    chain = _chain(917, k=2)
    _publish_chain(store, chain)
    with store.open_snapshot() as snapshot:
        expected = snapshot.load_result(_key(chain[-1]))
        store.export_snapshot(tmp_path / "replica", snapshot)
    attached = SimilarityStore.attach_snapshot(tmp_path / "replica")
    with attached.open_snapshot() as view:
        got = view.load_result(_key(chain[-1]))
    assert _canonical(got) == _canonical(expected)
    assert fsck(tmp_path / "replica", strict_orphans=True).ok


def test_attach_rejects_missing_empty_and_incomplete_directories(store,
                                                                 tmp_path):
    with pytest.raises(StoreAttachError, match="not a directory"):
        SimilarityStore.attach_snapshot(tmp_path / "nowhere")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(StoreAttachError, match="no manifest"):
        SimilarityStore.attach_snapshot(empty)
    _publish_chain(store, _chain(918, k=1))
    dest = tmp_path / "partial"
    store.export_snapshot(dest)
    (dest / sorted(SimilarityStore(dest).manifest().files())[0]).unlink()
    with pytest.raises(StoreAttachError, match="missing entries"):
        SimilarityStore.attach_snapshot(dest)


# --------------------------------------------------------------------- #
# Session wiring
# --------------------------------------------------------------------- #

def test_session_pins_one_snapshot_and_publishes_extensions(store):
    chain = _chain(919, k=1, base_rows=20, batch=4)
    with PlasmaSession(chain[0], n_hashes=16, store=store) as session:
        assert session.snapshot is not None and session.snapshot.pinned
        first_version = session.snapshot.version
        baseline = session.exact_baseline(THRESHOLD)
        scratch = ApssEngine().search(chain[0], THRESHOLD)
        assert _canonical(baseline) == _canonical(scratch)
        # The baseline's floor was published to the lineage.
        assert store.manifest().generation(chain[0].fingerprint()) is not None

        tail = chain[1].subset(range(20, 24))
        session.extend_dataset(tail, name="gen-1")
        record = store.manifest().generation(session.dataset.fingerprint())
        assert record is not None
        assert record.parent == chain[0].fingerprint()
        # The session stepped its snapshot past its own write.
        assert session.snapshot.version > first_version
    assert session.snapshot.closed
