"""Tests for crossing counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parcoords import count_crossings, count_crossings_brute_force, crossing_matrix


def test_no_crossings_when_orders_agree():
    x = [1.0, 2.0, 3.0, 4.0]
    assert count_crossings(x, x) == 0
    assert count_crossings(x, [10, 20, 30, 40]) == 0


def test_all_pairs_cross_when_order_reversed():
    x = [1.0, 2.0, 3.0, 4.0]
    y = [4.0, 3.0, 2.0, 1.0]
    assert count_crossings(x, y) == 6  # C(4, 2)


def test_single_inversion():
    assert count_crossings([1, 2, 3], [1, 3, 2]) == 1


def test_figure_5_3_example():
    """Three 2-item clusters: ordering w,z,y,x has fewer crossings than w,x,y,z."""
    data = np.array([
        [0.1, 0.9, 0.15, 0.2],
        [0.15, 0.95, 0.1, 0.25],
        [0.5, 0.5, 0.55, 0.5],
        [0.55, 0.45, 0.5, 0.55],
        [0.9, 0.1, 0.85, 0.9],
        [0.95, 0.05, 0.9, 0.85],
    ])
    w, x, y, z = 0, 1, 2, 3
    original = (count_crossings(data[:, w], data[:, x])
                + count_crossings(data[:, x], data[:, y])
                + count_crossings(data[:, y], data[:, z]))
    reordered = (count_crossings(data[:, w], data[:, z])
                 + count_crossings(data[:, z], data[:, y])
                 + count_crossings(data[:, y], data[:, x]))
    assert reordered < original


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        count_crossings([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        count_crossings_brute_force([1, 2], [1])


def test_trivial_sizes():
    assert count_crossings([], []) == 0
    assert count_crossings([1.0], [2.0]) == 0


def test_crossing_matrix_symmetric_zero_diagonal():
    rng = np.random.default_rng(1)
    data = rng.random((30, 5))
    matrix = crossing_matrix(data)
    assert matrix.shape == (5, 5)
    assert np.allclose(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)
    with pytest.raises(ValueError):
        crossing_matrix(data[:, 0])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                          st.floats(0, 1, allow_nan=False)),
                min_size=2, max_size=60))
def test_property_fast_count_matches_brute_force(pairs):
    """The O(n log n) BIT count equals the quadratic reference count."""
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    assert count_crossings(x, y) == count_crossings_brute_force(x, y)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=40),
       st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=40))
def test_property_crossings_symmetric(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    assert count_crossings(x, y) == count_crossings(y, x)
