"""Tests for Bézier geometry and the full parallel-coordinates model."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.parcoords import ParallelCoordinatesModel, quadratic_bezier
from repro.parcoords.bezier import polyline_with_assistant


def test_quadratic_bezier_endpoints_and_shape():
    curve = quadratic_bezier([0, 0], [0.5, 1.0], [1, 0], n_points=10)
    assert curve.shape == (10, 2)
    assert np.allclose(curve[0], [0, 0])
    assert np.allclose(curve[-1], [1, 0])
    # The curve bends towards the control point.
    assert curve[:, 1].max() > 0.3


def test_quadratic_bezier_validation():
    with pytest.raises(ValueError):
        quadratic_bezier([0, 0], [1, 1], [2, 2], n_points=1)
    with pytest.raises(ValueError):
        quadratic_bezier([0, 0, 0], [1, 1], [2, 2])


def test_polyline_with_assistant_passes_through_assistant_value():
    curve = polyline_with_assistant(0.0, 0.2, 1.0, 0.8, assistant_value=0.9,
                                    n_points=33, curved=True)
    midpoint = curve[len(curve) // 2]
    assert midpoint[0] == pytest.approx(0.5, abs=0.02)
    assert midpoint[1] == pytest.approx(0.9, abs=0.02)
    straight = polyline_with_assistant(0.0, 0.2, 1.0, 0.8, 0.9, curved=False)
    assert straight.shape == (3, 2)
    assert straight[1].tolist() == [0.5, 0.9]


@pytest.fixture(scope="module")
def clustered():
    return make_clustered_vectors(120, 7, 4, separation=5.0, cluster_std=0.8,
                                  seed=111)


def test_layout_reduces_crossings(clustered):
    model = ParallelCoordinatesModel(ordering_method="mst")
    layout = model.layout(clustered)
    assert layout.crossings_after_ordering <= layout.crossings_before
    assert sorted(layout.dimension_order) == list(range(7))
    assert layout.ordering_seconds > 0


def test_layout_energy_results_per_gap(clustered):
    layout = ParallelCoordinatesModel().layout(clustered)
    assert len(layout.energy_results) == 6  # one per adjacent coordinate pair
    assistant = layout.assistant_positions()
    assert assistant.shape == (clustered.n_rows, 6)
    assert layout.max_energy_iterations >= 1


def test_layout_without_energy_phase(clustered):
    layout = ParallelCoordinatesModel().layout(clustered, run_energy=False)
    assert layout.energy_results == []
    assert layout.energy_seconds == 0.0


def test_layout_polyline_geometry(clustered):
    layout = ParallelCoordinatesModel().layout(clustered)
    line = layout.polyline(0, curved=True, n_points=8)
    assert line.shape[1] == 2
    assert line[0, 0] == pytest.approx(0.0)
    assert line[-1, 0] == pytest.approx(6.0)
    straight = layout.polyline(0, curved=False)
    assert straight.shape[0] == 13  # 3 points per gap, shared interior points


def test_layout_accepts_plain_arrays_and_default_labels():
    rng = np.random.default_rng(0)
    data = rng.random((40, 4))
    layout = ParallelCoordinatesModel().layout(data)
    assert layout.clusters.tolist() == [0] * 40


def test_layout_normalization_to_unit_interval(clustered):
    layout = ParallelCoordinatesModel().layout(clustered)
    assert layout.normalized.min() >= 0.0
    assert layout.normalized.max() <= 1.0


def test_compare_orderings_reports_methods(clustered):
    model = ParallelCoordinatesModel()
    comparison = model.compare_orderings(clustered.to_dense()[:, :6], clustered.labels)
    assert set(comparison) == {"exact", "mst", "greedy"}
    assert comparison["exact"]["crossings"] <= comparison["mst"]["crossings"] + 1e-9
    assert comparison["mst"]["crossings"] <= 2 * comparison["exact"]["crossings"] + 1e-9
    # Exact search is slower than the approximation even at 6 dimensions.
    assert comparison["exact"]["seconds"] >= 0
    # Above 10 dimensions the exact solver is skipped.
    wide = np.random.default_rng(1).random((30, 12))
    assert "exact" not in model.compare_orderings(wide)


def test_layout_validation():
    with pytest.raises(ValueError):
        ParallelCoordinatesModel().layout(np.zeros((4, 3)), clusters=[0, 1])
    with pytest.raises(ValueError):
        ParallelCoordinatesModel().layout(np.zeros(5))
