"""Tests for the energy-reduction layout model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parcoords import EnergyModel


def _two_cluster_data(n_per_cluster=20, seed=0):
    rng = np.random.default_rng(seed)
    x = np.concatenate([rng.normal(0.2, 0.05, n_per_cluster),
                        rng.normal(0.8, 0.05, n_per_cluster)])
    y = np.concatenate([rng.normal(0.3, 0.05, n_per_cluster),
                        rng.normal(0.7, 0.05, n_per_cluster)])
    labels = np.array([0] * n_per_cluster + [1] * n_per_cluster)
    return x, y, labels


def test_energy_monotonically_decreases():
    x, y, labels = _two_cluster_data()
    result = EnergyModel().layout(x, y, labels)
    history = np.array(result.energy_history)
    assert np.all(np.diff(history) <= 1e-9)
    assert result.converged
    assert result.iterations <= 500


def test_pure_elastic_model_keeps_lines_straight():
    x, y, labels = _two_cluster_data()
    result = EnergyModel(alpha=1.0, beta=0.0, gamma=0.0).layout(x, y, labels)
    assert np.allclose(result.positions, (x + y) / 2, atol=1e-9)


def test_attraction_pulls_lines_towards_cluster_centers():
    x, y, labels = _two_cluster_data(seed=3)
    baseline = (x + y) / 2
    result = EnergyModel(alpha=0.2, beta=0.8, gamma=0.0).layout(x, y, labels)
    for cluster in (0, 1):
        members = labels == cluster
        center = baseline[members].mean()
        spread_before = np.abs(baseline[members] - center).mean()
        spread_after = np.abs(result.positions[members]
                              - result.positions[members].mean()).mean()
        assert spread_after < spread_before


def test_repulsion_pulls_interior_cluster_towards_neighbor_midpoint():
    """The repelling energy is minimised when an interior cluster's lines sit
    midway between the two adjacent cluster centers, so adding gamma must move
    them closer to that midpoint than the attraction-only layout does."""
    rng = np.random.default_rng(5)
    x = np.concatenate([rng.normal(0.20, 0.02, 15), rng.normal(0.55, 0.02, 15),
                        rng.normal(0.80, 0.02, 15)])
    y = np.concatenate([rng.normal(0.25, 0.02, 15), rng.normal(0.60, 0.02, 15),
                        rng.normal(0.75, 0.02, 15)])
    labels = np.array([0] * 15 + [1] * 15 + [2] * 15)

    without = EnergyModel(alpha=0.4, beta=0.6, gamma=0.0).layout(x, y, labels)
    with_rep = EnergyModel(alpha=0.4, beta=0.3, gamma=0.3).layout(x, y, labels)

    def distance_to_neighbor_midpoint(result):
        order = result.cluster_order
        centers = {label: result.positions[labels == label].mean()
                   for label in order}
        midpoint = (centers[order[0]] + centers[order[2]]) / 2.0
        interior = result.positions[labels == order[1]]
        return float(np.abs(interior - midpoint).mean())

    assert (distance_to_neighbor_midpoint(with_rep)
            <= distance_to_neighbor_midpoint(without) + 1e-9)


def test_weighted_variant_runs_and_converges():
    x, y, labels = _two_cluster_data(seed=7)
    labels = np.array([0] * 5 + [1] * 35)  # very unbalanced clusters
    result = EnergyModel(weighted=True).layout(x, y, labels)
    history = np.array(result.energy_history)
    assert np.all(np.diff(history) <= 1e-9)


def test_single_cluster_and_empty_input():
    model = EnergyModel()
    x = np.array([0.1, 0.5, 0.9])
    result = model.layout(x, x, [0, 0, 0])
    assert len(result.positions) == 3
    empty = model.layout([], [], [])
    assert empty.converged
    assert len(empty.positions) == 0


def test_cluster_order_sorted_by_center():
    x = np.array([0.9, 0.88, 0.1, 0.12])
    y = np.array([0.85, 0.9, 0.12, 0.1])
    result = EnergyModel().layout(x, y, ["high", "high", "low", "low"])
    assert result.cluster_order == ["low", "high"]


def test_invalid_arguments():
    with pytest.raises(ValueError):
        EnergyModel(alpha=-0.1)
    with pytest.raises(ValueError):
        EnergyModel(alpha=0, beta=0, gamma=0)
    with pytest.raises(ValueError):
        EnergyModel(max_iterations=0)
    with pytest.raises(ValueError):
        EnergyModel().layout([1, 2], [1], [0, 0])


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 4), st.integers(0, 1000),
       st.floats(0.05, 0.9), st.floats(0.05, 0.9))
def test_property_energy_never_increases(n_clusters, seed, beta_share, gamma_share):
    rng = np.random.default_rng(seed)
    n = 10 * n_clusters
    labels = np.repeat(np.arange(n_clusters), 10)
    x = rng.random(n)
    y = rng.random(n)
    total = 1.0 + beta_share + gamma_share
    model = EnergyModel(alpha=1.0 / total, beta=beta_share / total,
                        gamma=gamma_share / total)
    result = model.layout(x, y, labels)
    history = np.array(result.energy_history)
    assert np.all(np.diff(history) <= 1e-8 * max(1.0, history[0]))
