"""Tests for dimension ordering."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parcoords import (
    order_dimensions,
    order_dimensions_exact,
    order_dimensions_greedy,
    order_dimensions_mst,
    path_cost,
)


def _random_weights(k, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 100, size=(k, k)).astype(float)
    weights = (weights + weights.T) / 2
    np.fill_diagonal(weights, 0)
    return weights


def test_path_cost_simple():
    weights = np.array([[0, 1, 5], [1, 0, 2], [5, 2, 0]], dtype=float)
    assert path_cost([0, 1, 2], weights) == 3
    assert path_cost([1, 0, 2], weights) == 6


def test_exact_order_is_optimal_by_enumeration():
    weights = _random_weights(6, seed=3)
    best = order_dimensions_exact(weights)
    best_cost = path_cost(best, weights)
    for permutation in itertools.permutations(range(6)):
        assert best_cost <= path_cost(permutation, weights) + 1e-9


def test_exact_order_maximize():
    weights = _random_weights(5, seed=4)
    best = order_dimensions_exact(weights, maximize=True)
    best_cost = path_cost(best, weights)
    for permutation in itertools.permutations(range(5)):
        assert best_cost >= path_cost(permutation, weights) - 1e-9


def test_exact_order_rejects_large_k():
    with pytest.raises(ValueError):
        order_dimensions_exact(_random_weights(11))


def test_mst_order_visits_every_dimension_once():
    weights = _random_weights(9, seed=5)
    order = order_dimensions_mst(weights)
    assert sorted(order) == list(range(9))


def test_greedy_order_visits_every_dimension_once():
    weights = _random_weights(9, seed=6)
    order = order_dimensions_greedy(weights)
    assert sorted(order) == list(range(9))


def test_non_symmetric_weights_rejected():
    weights = np.array([[0, 1], [2, 0]], dtype=float)
    with pytest.raises(ValueError):
        order_dimensions_mst(weights)


def test_order_dimensions_dispatch_and_unknown_method():
    weights = _random_weights(5, seed=7)
    assert sorted(order_dimensions(weights, "mst")) == list(range(5))
    with pytest.raises(KeyError):
        order_dimensions(weights, "simulated-annealing")


def test_pinned_positions_are_honoured():
    weights = _random_weights(6, seed=8)
    order = order_dimensions(weights, "mst", pinned={0: 3, 5: 1})
    assert order[0] == 3
    assert order[5] == 1
    assert sorted(order) == list(range(6))


def test_pinned_validation():
    weights = _random_weights(4, seed=9)
    with pytest.raises(ValueError):
        order_dimensions(weights, "mst", pinned={0: 9})
    with pytest.raises(ValueError):
        order_dimensions(weights, "mst", pinned={0: 1, 1: 1})


def test_small_matrices():
    assert order_dimensions_mst(np.zeros((0, 0))) == []
    assert order_dimensions_mst(np.zeros((1, 1))) == [0]
    assert order_dimensions_greedy(np.zeros((1, 1))) == [0]
    assert order_dimensions_exact(np.zeros((0, 0))) == []


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 7), st.integers(0, 10_000))
def test_property_mst_order_within_2x_of_optimum(k, seed):
    """The MST preorder is a 2-approximation for metric-like weights.

    Crossing counts between coordinates behave metrically (the chapter proves
    the triangle inequality for its crossing definition); random metric
    matrices are generated from points on a line.
    """
    rng = np.random.default_rng(seed)
    points = rng.random(k)
    weights = np.abs(points[:, None] - points[None, :])
    exact_cost = path_cost(order_dimensions_exact(weights), weights)
    mst_cost = path_cost(order_dimensions_mst(weights), weights)
    assert mst_cost <= 2.0 * exact_cost + 1e-9
