"""Tests for threshold-space exploration helpers."""

import numpy as np
import pytest

from repro.core import find_inflection_points, find_knee, suggest_next_threshold


def test_find_knee_of_exponential_decay():
    xs = np.linspace(0, 1, 50)
    ys = np.exp(-8 * xs)
    knee = find_knee(xs, ys)
    assert 0.05 < knee < 0.45


def test_find_knee_of_elbow_curve():
    xs = np.linspace(0, 1, 101)
    ys = np.where(xs < 0.6, 1000 - 100 * xs, 1000 - 60 - 1500 * (xs - 0.6))
    knee = find_knee(xs, ys)
    assert knee == pytest.approx(0.6, abs=0.05)


def test_find_knee_requires_three_points():
    with pytest.raises(ValueError):
        find_knee([0, 1], [1, 2])


def test_find_knee_flat_curve_returns_valid_x():
    xs = np.linspace(0, 1, 10)
    knee = find_knee(xs, np.ones(10))
    assert 0.0 <= knee <= 1.0


def test_inflection_points_detect_slope_change():
    xs = np.linspace(0, 1, 101)
    ys = np.where(xs < 0.5, xs, 0.5 + 10 * (xs - 0.5))
    points = find_inflection_points(xs, ys)
    assert any(abs(p - 0.5) < 0.05 for p in points)


def test_inflection_points_none_for_straight_line():
    xs = np.linspace(0, 1, 20)
    assert find_inflection_points(xs, 3 * xs + 1) == []


def test_suggest_next_threshold_prefers_knee():
    xs = np.linspace(0.05, 0.95, 19)
    ys = np.exp(-6 * xs) * 1000
    suggestion = suggest_next_threshold(xs, ys, probed=[0.9])
    assert 0.05 <= suggestion <= 0.6


def test_suggest_next_threshold_avoids_probed_values():
    xs = np.linspace(0.05, 0.95, 19)
    ys = np.exp(-6 * xs) * 1000
    first = suggest_next_threshold(xs, ys, probed=[0.9])
    second = suggest_next_threshold(xs, ys, probed=[0.9, first])
    assert abs(second - first) > 0.02


def test_suggest_next_threshold_falls_back_to_gap_bisection():
    xs = np.linspace(0.0, 1.0, 11)
    ys = np.linspace(100, 0, 11)  # straight line: no knee, no inflections
    suggestion = suggest_next_threshold(xs, ys, probed=[0.5])
    assert 0.0 <= suggestion <= 1.0
    assert abs(suggestion - 0.5) > 0.02


def test_suggest_next_threshold_clamps_out_of_grid_probes():
    # Probes outside the grid used to leave the fallback's anchor list
    # unsorted (negative gaps) and could suggest a threshold beyond the
    # grid (e.g. probed=2.0 here bisected the phantom [max, 2.0] gap to
    # 1.5); clamped + sorted anchors keep the bisection inside the grid.
    xs = np.linspace(0.0, 1.0, 11)
    ys = np.linspace(100, 0, 11)  # straight line: no real knee, no inflections
    # Probing every grid point forces the gap-bisection fallback no matter
    # which point the (numerically noisy) knee of a straight line lands on.
    suggestion = suggest_next_threshold(xs, ys, probed=list(xs) + [2.0])
    assert 0.0 <= suggestion <= 1.0


def test_suggest_next_threshold_all_probes_outside_grid_stay_in_grid():
    xs = np.linspace(0.2, 0.8, 13)
    ys = np.linspace(50, 10, 13)
    suggestion = suggest_next_threshold(xs, ys,
                                        probed=list(xs) + [-1.0, 0.05, 2.5])
    assert 0.2 <= suggestion <= 0.8
