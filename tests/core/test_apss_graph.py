"""Tests for the Cumulative APSS Graph."""

import numpy as np
import pytest

from repro.core import CumulativeApssGraph, KnowledgeCache
from repro.lsh.bayeslsh import PairEvaluation


def _cache_with_estimates(estimates, variance=0.0004):
    cache = KnowledgeCache()
    for i, estimate in enumerate(estimates):
        cache.record(PairEvaluation(first=i, second=i + 1000, n_hashes=64,
                                    matches=int(64 * max(estimate, 0.0)),
                                    estimate=estimate, variance=variance,
                                    outcome="concentrated", retained=True))
    return cache


def test_empty_cache_gives_zero_estimates():
    graph = CumulativeApssGraph(KnowledgeCache())
    estimate = graph.estimate(0.5)
    assert estimate.expected_pairs == 0.0
    assert estimate.std == 0.0


def test_expected_counts_track_true_counts():
    estimates = [0.2] * 50 + [0.6] * 30 + [0.9] * 20
    graph = CumulativeApssGraph(_cache_with_estimates(estimates))
    counts = graph.expected_counts([0.1, 0.5, 0.8])
    assert counts[0.1] == pytest.approx(100, rel=0.05)
    assert counts[0.5] == pytest.approx(50, rel=0.1)
    assert counts[0.8] == pytest.approx(20, rel=0.1)


def test_curve_is_monotone_nonincreasing():
    estimates = np.linspace(0.05, 0.95, 200).tolist()
    graph = CumulativeApssGraph(_cache_with_estimates(estimates))
    curve = graph.curve()
    values = [e.expected_pairs for e in curve]
    assert all(values[i] >= values[i + 1] - 1e-9 for i in range(len(values) - 1))


def test_error_bars_positive_near_uncertain_pairs():
    graph = CumulativeApssGraph(_cache_with_estimates([0.5] * 40, variance=0.01))
    estimate = graph.estimate(0.5)
    assert estimate.std > 0
    assert estimate.lower <= estimate.expected_pairs <= estimate.upper


def test_high_variance_widens_error_bars():
    tight = CumulativeApssGraph(_cache_with_estimates([0.6] * 50, variance=1e-6))
    loose = CumulativeApssGraph(_cache_with_estimates([0.6] * 50, variance=0.02))
    assert loose.estimate(0.65).std > tight.estimate(0.65).std


def test_as_series_shapes():
    graph = CumulativeApssGraph(_cache_with_estimates([0.3, 0.7]),
                                thresholds=[0.2, 0.5, 0.8])
    xs, ys, errs = graph.as_series()
    assert len(xs) == len(ys) == len(errs) == 3
    assert xs.tolist() == [0.2, 0.5, 0.8]


def test_relative_error_against_ground_truth():
    graph = CumulativeApssGraph(_cache_with_estimates([0.9] * 10, variance=1e-6))
    errors = graph.relative_error_against({0.8: 10, 0.99: 0})
    assert errors[0.8] == pytest.approx(0.0, abs=0.05)
    assert errors[0.99] >= 0.0


def test_exact_reference_counts_matches_engine_ground_truth():
    from repro.core.apss_graph import exact_reference_counts
    from repro.datasets import make_clustered_vectors
    from repro.similarity import apss_search

    dataset = make_clustered_vectors(40, 6, 3, seed=19)
    thresholds = [0.3, 0.6, 0.9]
    counts = exact_reference_counts(dataset, thresholds)
    for t in thresholds:
        assert counts[t] == apss_search(dataset, t, "cosine").pair_count()
    # Any registered exact backend yields the same ground truth.
    assert counts == exact_reference_counts(dataset, thresholds,
                                            backend="exact-loop")


def test_relative_error_to_exact_audits_probed_session():
    from repro.core import PlasmaSession
    from repro.datasets import make_clustered_vectors

    dataset = make_clustered_vectors(50, 8, 3, seed=23)
    session = PlasmaSession(dataset, n_hashes=128, seed=1)
    session.probe(0.6)
    graph = session.cumulative_graph()
    errors = graph.relative_error_to_exact(dataset, thresholds=[0.6, 0.8])
    assert set(errors) == {0.6, 0.8}
    # The probe happened at 0.6, so the estimate there tracks ground truth.
    assert errors[0.6] < 0.25
