"""Integration tests for the PLASMA-HD interactive session."""

import numpy as np
import pytest

from repro.core import PlasmaSession
from repro.datasets import make_clustered_vectors
from repro.lsh.bayeslsh import BayesLSHConfig
from repro.similarity import exact_pair_count


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(70, 8, 4, separation=5.0, cluster_std=0.7,
                                  seed=41).l2_normalized()


@pytest.fixture()
def session(dataset):
    return PlasmaSession(dataset, n_hashes=192, seed=1,
                         config=BayesLSHConfig(max_hashes=192))


def test_probe_returns_reasonable_pair_count(dataset, session):
    threshold = 0.9
    result = session.probe(threshold)
    exact = exact_pair_count(dataset, [threshold])[threshold]
    assert result.pair_count == pytest.approx(exact, rel=0.25)
    assert result.total_seconds > 0
    assert result.sketch_seconds >= 0
    assert session.history == [result]


def test_sketches_built_once_per_session(dataset, session):
    session.probe(0.9)
    first_store = session.sketch_store
    session.probe(0.8)
    assert session.sketch_store is first_store
    # Only the first probe pays the sketch-building cost.
    assert session.history[0].sketch_seconds > 0 or session.history[0].sketch_fraction >= 0
    assert session.history[1].sketch_seconds == 0.0


def test_knowledge_caching_reduces_hash_comparisons(dataset):
    cached = PlasmaSession(dataset, n_hashes=160, seed=2)
    uncached = PlasmaSession(dataset, n_hashes=160, seed=2)

    cached.probe(0.95)
    uncached.probe(0.95)
    with_cache = cached.probe(0.85)
    without_cache = uncached.probe(0.85, use_cache=False)

    assert with_cache.cached_hash_reuse > 0
    assert with_cache.apss.hash_comparisons < without_cache.apss.hash_comparisons
    # Both report a similar number of pairs despite the cached shortcut.
    assert with_cache.pair_count == pytest.approx(without_cache.pair_count, rel=0.3)


def test_cumulative_graph_improves_with_second_probe(dataset, session):
    thresholds = [0.5, 0.7, 0.9]
    exact = exact_pair_count(dataset, thresholds)

    session.probe(0.9)
    error_one = np.mean(list(
        session.cumulative_graph().relative_error_against(exact).values()))
    session.probe(0.5)
    error_two = np.mean(list(
        session.cumulative_graph().relative_error_against(exact).values()))
    assert error_two <= error_one + 0.05


def test_incremental_estimates_converge(dataset, session):
    result = session.probe(0.85, incremental_thresholds=[0.9],
                           incremental_checkpoints=10)
    assert len(result.incremental_estimates) >= 5
    final = result.incremental_estimates[-1][1][0.9]
    exact = exact_pair_count(dataset, [0.9])[0.9]
    assert final == pytest.approx(exact, rel=0.35)
    # The last checkpoint covers (nearly) all candidates.
    assert result.incremental_estimates[-1][0] >= 0.9


def test_visual_cues_need_no_further_probes(dataset, session):
    session.probe(0.9)
    hist = session.triangle_histogram(0.95)
    plot = session.density_plot(0.95)
    graph = session.similarity_graph(0.95)
    assert hist.total_triangles >= 0
    assert len(plot.positions) == dataset.n_rows
    assert graph.n_nodes == dataset.n_rows


def test_suggest_threshold_in_range(dataset, session):
    session.probe(0.9)
    suggestion = session.suggest_threshold()
    assert 0.0 < suggestion < 1.0


def test_brute_force_sweep_slower_than_interactive(dataset):
    session = PlasmaSession(dataset, n_hashes=96, seed=3,
                            config=BayesLSHConfig(max_hashes=96))
    sweep_thresholds = [round(t, 1) for t in np.arange(0.1, 1.0, 0.1)]
    counts, sweep_seconds = session.brute_force_sweep(sweep_thresholds)

    interactive = PlasmaSession(dataset, n_hashes=96, seed=3,
                                config=BayesLSHConfig(max_hashes=96))
    t0 = interactive.probe(0.9).total_seconds
    t1 = interactive.probe(0.5).total_seconds
    assert len(counts) == len(sweep_thresholds)
    assert (t0 + t1) < sweep_seconds


def test_invalid_constructor_arguments(dataset):
    with pytest.raises(ValueError):
        PlasmaSession(dataset, measure="euclidean")
    with pytest.raises(ValueError):
        PlasmaSession(dataset, candidate_strategy="prefix")


def test_probe_rejects_invalid_threshold(dataset, session):
    with pytest.raises(ValueError):
        session.probe(0.0)
