"""Session-layer tests for two-tier serving.

``PlasmaSession.tiered_probe`` must answer immediately from the sketch tier
with an advertised recall bound, ``await_refinement`` must land the exact
sweep and step the session's snapshot pin past it, and subsequent probes —
including ones in a brand-new process over the same store — must re-serve
the exact floor without any kernel work.  Every kernel invocation is
audited through the shared ``ApssEngine.search_calls`` counter.
"""

import numpy as np
import pytest

from repro.core import PlasmaSession
from repro.datasets import make_clustered_vectors
from repro.lsh.bayeslsh import BayesLSHConfig
from repro.similarity import ApssEngine
from repro.store import SimilarityStore

THRESHOLD = 0.9


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(60, 8, 3, separation=5.0, cluster_std=0.7,
                                  seed=17).l2_normalized()


def _session(dataset, tmp_path, name="tiered", **kwargs):
    kwargs.setdefault("n_hashes", 160)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("config", BayesLSHConfig(max_hashes=160))
    kwargs.setdefault("engine", ApssEngine())
    return PlasmaSession(dataset, store=SimilarityStore(tmp_path / name),
                         **kwargs)


def test_tiered_probe_serves_sketch_then_exact(dataset, tmp_path):
    with _session(dataset, tmp_path) as session:
        result, tier, bound = session.tiered_probe(THRESHOLD)
        assert tier == "sketch"
        assert bound == pytest.approx(1.0 - session.config.epsilon)
        assert not result.exact

        landed = session.await_refinement()
        assert len(landed) == 1 and landed[0].exact

        upgraded = session.tiered_probe(THRESHOLD)
        assert upgraded.tier == "exact" and upgraded.bound == 1.0
        assert upgraded.result.pair_set() == \
            session.exact_baseline(THRESHOLD).pair_set()


def test_tiered_probe_kernel_audit_sync_mode(dataset, tmp_path):
    with _session(dataset, tmp_path) as session:
        session.tiered.refine = "sync"
        answer = session.tiered_probe(THRESHOLD)
        # One bayeslsh pass for the sketch answer, one exact sweep for the
        # refinement that landed before the probe returned.
        assert answer.tier == "sketch"
        assert session.engine.search_calls == 2
        assert session.tiered.refinements == 1

        again = session.tiered_probe(THRESHOLD)
        assert again.tier == "exact"
        assert session.engine.search_calls == 2     # re-serve is kernel-free


def test_await_refinement_steps_snapshot_pin(dataset, tmp_path):
    with _session(dataset, tmp_path) as session:
        pinned = session.snapshot
        session.tiered_probe(THRESHOLD)
        assert session.await_refinement()
        # The pin was re-opened past the landed upgrade, so the session's
        # own snapshot-consistent sweeps see the exact floor kernel-free.
        assert session.snapshot is not pinned
        calls = session.engine.search_calls
        baseline = session.exact_baseline(THRESHOLD)
        assert baseline.exact
        assert session.engine.search_calls == calls


def test_await_refinement_without_pending_is_noop(dataset, tmp_path):
    with _session(dataset, tmp_path) as session:
        pinned = session.snapshot
        assert session.await_refinement() == []
        assert session.snapshot is pinned


def test_extend_then_tiered_probe_delta_extends(dataset, tmp_path):
    rng = np.random.default_rng(23)
    dense = rng.normal(size=(6, dataset.n_features))
    dense /= np.linalg.norm(dense, axis=1, keepdims=True)
    extra = [dict(enumerate(map(float, row))) for row in dense]
    with _session(dataset, tmp_path, name="delta") as session:
        session.tiered.refine = "off"
        first = session.tiered_probe(THRESHOLD)
        assert first.tier == "sketch"
        assert session.engine.search_calls == 1

        session.extend_dataset(extra, labels=[-1] * len(extra))
        answer = session.tiered_probe(THRESHOLD)
        # The appended probe reuses the parked parent floor: only the new
        # rows are sketched and verified, never a fresh kernel pass.
        assert answer.tier == "sketch"
        assert session.tiered.sketch_cache.delta_extensions == 1
        assert session.engine.search_calls == 1


def test_tiered_exact_resumes_kernel_free_across_sessions(dataset, tmp_path):
    with _session(dataset, tmp_path, name="resume") as session:
        session.tiered_probe(THRESHOLD)
        session.await_refinement()
        reference = session.tiered_probe(THRESHOLD).result.pair_set()

    with _session(dataset, tmp_path, name="resume") as fresh:
        answer = fresh.tiered_probe(THRESHOLD)
        assert answer.tier == "exact" and answer.bound == 1.0
        assert answer.result.pair_set() == reference
        assert fresh.engine.search_calls == 0
