"""Tests for triangle histogram and density-plot visual cues."""

import numpy as np
import pytest

from repro.core import KnowledgeCache, density_plot, triangle_vertex_histogram
from repro.core.visual_cues import graph_at_threshold
from repro.graphs import Graph
from repro.lsh.bayeslsh import PairEvaluation


def _clique_plus_path() -> Graph:
    """A 5-clique attached to a 4-node path (clear core + periphery)."""
    graph = Graph(9)
    for i in range(5):
        for j in range(i + 1, 5):
            graph.add_edge(i, j)
    graph.add_edge(4, 5)
    graph.add_edge(5, 6)
    graph.add_edge(6, 7)
    graph.add_edge(7, 8)
    return graph


def test_triangle_histogram_from_graph():
    hist = triangle_vertex_histogram(_clique_plus_path(), bins=10)
    assert hist.total_triangles == 10  # C(5, 3)
    assert hist.max_per_vertex == 6    # each clique vertex is in C(4, 2) triangles
    assert hist.counts.sum() == 9      # one histogram entry per vertex


def test_triangle_histogram_empty_graph():
    hist = triangle_vertex_histogram(Graph(5))
    assert hist.total_triangles == 0
    assert hist.mean_per_vertex == 0.0


def test_density_plot_detects_clique_core():
    plot = density_plot(_clique_plus_path())
    # The first five vertices in core-first order are the clique: density 1.0.
    assert plot.densities[4] == pytest.approx(1.0)
    # Density decreases (weakly) as peripheral path vertices are appended.
    assert plot.densities[-1] < plot.densities[4]
    assert len(plot.positions) == 9


def test_density_plot_reports_plateaus():
    graph = Graph(12)
    for i in range(6):
        for j in range(i + 1, 6):
            graph.add_edge(i, j)
    plot = density_plot(graph, min_plateau_length=3)
    assert plot.plateaus  # the clique prefix produces a flat high-density run
    best = max(plot.plateaus, key=lambda p: p[2])
    assert best[2] > 0.9


def test_cues_from_knowledge_cache():
    cache = KnowledgeCache()
    edges = [(0, 1), (1, 2), (0, 2), (3, 4)]
    for first, second in edges:
        cache.record(PairEvaluation(first=first, second=second, n_hashes=64,
                                    matches=60, estimate=0.95, variance=1e-4,
                                    outcome="concentrated", retained=True))
    graph = graph_at_threshold(cache, 5, 0.9)
    assert graph.n_edges == 4
    hist = triangle_vertex_histogram(cache, threshold=0.9, n_nodes=5)
    assert hist.total_triangles == 1
    plot = density_plot(cache, threshold=0.9, n_nodes=5)
    assert len(plot.positions) == 5


def test_cache_source_requires_threshold_and_nodes():
    with pytest.raises(ValueError):
        triangle_vertex_histogram(KnowledgeCache())
    with pytest.raises(TypeError):
        triangle_vertex_histogram([1, 2, 3])
