"""Tests for the knowledge cache."""

import numpy as np
import pytest

from repro.core import KnowledgeCache
from repro.lsh.bayeslsh import PairEvaluation


def _evaluation(first, second, n_hashes, matches, estimate, variance=0.01):
    return PairEvaluation(first=first, second=second, n_hashes=n_hashes,
                          matches=matches, estimate=estimate,
                          variance=variance, outcome="concentrated",
                          retained=estimate >= 0.5)


def test_record_and_lookup():
    cache = KnowledgeCache()
    cache.record(_evaluation(1, 2, 32, 20, 0.6))
    assert (1, 2) in cache
    assert cache.lookup((1, 2)) == (32, 20)
    assert cache.lookup((2, 1)) == (32, 20)  # canonical pair ordering
    assert cache.lookup((1, 3)) is None


def test_record_only_upgrades():
    cache = KnowledgeCache()
    cache.record(_evaluation(0, 1, 64, 40, 0.7))
    cache.record(_evaluation(0, 1, 16, 10, 0.5))
    assert cache.lookup((0, 1)) == (64, 40)
    cache.record(_evaluation(0, 1, 128, 90, 0.72))
    assert cache.lookup((0, 1)) == (128, 90)


def test_hashes_saved_counter():
    cache = KnowledgeCache()
    cache.record(_evaluation(0, 1, 48, 30, 0.6))
    cache.lookup((0, 1))
    cache.lookup((0, 1))
    assert cache.hashes_saved == 96


def test_estimates_and_histogram():
    cache = KnowledgeCache()
    for i, estimate in enumerate([0.2, 0.5, 0.9]):
        cache.record(_evaluation(i, i + 10, 32, int(32 * estimate), estimate))
    estimates = cache.estimates()
    assert sorted(estimates.tolist()) == pytest.approx([0.2, 0.5, 0.9])
    counts, edges = cache.estimate_histogram(bins=10)
    assert counts.sum() == 3


def test_pairs_at_threshold():
    cache = KnowledgeCache()
    cache.record(_evaluation(0, 1, 32, 30, 0.95))
    cache.record(_evaluation(0, 2, 32, 10, 0.30))
    assert cache.pairs_at_threshold(0.9) == [(0, 1)]
    assert len(cache.pairs_at_threshold(0.1)) == 2


def test_prior_weights_uniform_when_empty():
    cache = KnowledgeCache()
    grid = np.linspace(0, 1, 11)
    weights = cache.prior_weights(grid)
    assert np.allclose(weights, weights[0])
    assert weights.sum() == pytest.approx(1.0)


def test_prior_weights_concentrate_near_estimates():
    cache = KnowledgeCache()
    for i in range(20):
        cache.record(_evaluation(i, i + 100, 64, 60, 0.9))
    grid = np.linspace(0, 1, 101)
    weights = cache.prior_weights(grid)
    assert weights.sum() == pytest.approx(1.0)
    assert weights[90] > weights[10]


def test_clear_resets_everything():
    cache = KnowledgeCache()
    cache.record(_evaluation(0, 1, 32, 16, 0.5))
    cache.probed_thresholds.append(0.8)
    cache.lookup((0, 1))
    cache.clear()
    assert len(cache) == 0
    assert cache.probed_thresholds == []
    assert cache.hashes_saved == 0
