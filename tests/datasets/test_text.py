"""Tests for the sparse corpus generator."""

import numpy as np
import pytest

from repro.datasets import make_sparse_corpus
from repro.similarity import pairwise_similarity_matrix


def test_corpus_shape():
    corpus = make_sparse_corpus(50, 300, avg_doc_length=20, seed=0)
    assert corpus.n_rows == 50
    assert corpus.n_features == 300
    assert corpus.labels is not None
    assert 5 < corpus.average_length < 60


def test_corpus_rows_are_unit_norm_when_tfidf():
    corpus = make_sparse_corpus(30, 200, seed=1, tfidf=True)
    for i in range(corpus.n_rows):
        _, vals = corpus.row(i)
        assert np.linalg.norm(vals) == pytest.approx(1.0, abs=1e-9)


def test_corpus_without_tfidf_has_integer_counts():
    corpus = make_sparse_corpus(20, 100, seed=2, tfidf=False)
    _, vals = corpus.row(0)
    assert np.allclose(vals, np.round(vals))


def test_corpus_topic_cohesion():
    """Documents sharing a topic should be more similar on average."""
    corpus = make_sparse_corpus(60, 400, n_topics=4, topic_concentration=0.9,
                                avg_doc_length=30, seed=3)
    sims = pairwise_similarity_matrix(corpus)
    labels = corpus.labels
    within, between = [], []
    for i in range(corpus.n_rows):
        for j in range(i + 1, corpus.n_rows):
            (within if labels[i] == labels[j] else between).append(sims[i, j])
    assert np.mean(within) > np.mean(between)


def test_corpus_deterministic():
    a = make_sparse_corpus(25, 150, seed=7)
    b = make_sparse_corpus(25, 150, seed=7)
    assert np.allclose(a.to_dense(), b.to_dense())


def test_corpus_invalid_args():
    with pytest.raises(ValueError):
        make_sparse_corpus(10, 100, avg_doc_length=0)
    with pytest.raises(ValueError):
        make_sparse_corpus(10, 100, topic_concentration=2.0)
