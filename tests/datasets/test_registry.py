"""Tests for the named dataset registry."""

import pytest

from repro.datasets import (
    TransactionDatabase,
    VectorDataset,
    available_datasets,
    dataset_spec,
    load_dataset,
    load_transactions,
)


def test_available_datasets_nonempty_and_sorted():
    names = available_datasets()
    assert len(names) > 20
    assert names == sorted(names)


def test_available_datasets_kind_filter():
    uci = available_datasets("uci")
    assert "wine" in uci
    assert "twitter" not in uci
    corpora = available_datasets("corpus")
    assert "rcv1" in corpora


def test_dataset_spec_lookup():
    spec = dataset_spec("wine")
    assert spec.kind == "uci"
    assert spec.paper_rows == 178
    with pytest.raises(KeyError):
        dataset_spec("nope")


def test_load_uci_dataset():
    ds = load_dataset("wine", seed=1)
    assert isinstance(ds, VectorDataset)
    assert ds.n_features == 13
    assert ds.n_rows == 178


def test_load_corpus_dataset_capped():
    ds = load_dataset("rcv1", max_rows=200, seed=1)
    assert isinstance(ds, VectorDataset)
    assert ds.n_rows <= 200
    assert ds.nnz > 0


def test_load_dataset_rejects_transactional_names():
    with pytest.raises(ValueError):
        load_dataset("kosarak")


def test_load_transactions_fimi():
    db = load_transactions("mushroom_trans", seed=1)
    assert isinstance(db, TransactionDatabase)
    assert db.n_transactions > 50


def test_load_transactions_webgraph():
    db = load_transactions("eu2005", max_rows=300, seed=1)
    assert isinstance(db, TransactionDatabase)
    assert db.n_transactions <= 300


def test_load_transactions_rejects_vector_names():
    with pytest.raises(ValueError):
        load_transactions("wine")
