"""Tests for the VectorDataset container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import VectorDataset


def test_from_rows_basic_shape():
    ds = VectorDataset.from_rows([{0: 1.0, 2: 2.0}, {1: 3.0}], n_features=4)
    assert ds.n_rows == 2
    assert ds.n_features == 4
    assert ds.nnz == 3
    assert ds.average_length == pytest.approx(1.5)


def test_from_rows_infers_feature_count():
    ds = VectorDataset.from_rows([{5: 1.0}])
    assert ds.n_features == 6


def test_from_rows_rejects_duplicate_features():
    with pytest.raises(ValueError):
        VectorDataset.from_rows([[(1, 1.0), (1, 2.0)]])


def test_from_rows_rejects_negative_features():
    with pytest.raises(ValueError):
        VectorDataset.from_rows([{-1: 1.0}])


def test_row_accessors_agree():
    ds = VectorDataset.from_rows([{0: 1.5, 3: 2.5}, {}], n_features=5)
    idx, vals = ds.row(0)
    assert idx.tolist() == [0, 3]
    assert vals.tolist() == [1.5, 2.5]
    assert ds.row_dict(0) == {0: 1.5, 3: 2.5}
    assert ds.row_set(0) == frozenset({0, 3})
    assert ds.row_dict(1) == {}


def test_from_dense_round_trip():
    dense = np.array([[0.0, 1.0, 2.0], [3.0, 0.0, 0.0]])
    ds = VectorDataset.from_dense(dense)
    assert np.allclose(ds.to_dense(), dense)
    assert ds.nnz == 3


def test_l2_normalized_rows_have_unit_norm():
    ds = VectorDataset.from_rows([{0: 3.0, 1: 4.0}, {2: 7.0}, {}], n_features=3)
    normalized = ds.l2_normalized()
    idx, vals = normalized.row(0)
    assert np.linalg.norm(vals) == pytest.approx(1.0)
    idx, vals = normalized.row(1)
    assert np.linalg.norm(vals) == pytest.approx(1.0)
    # Zero rows stay zero rather than dividing by zero.
    assert len(normalized.row(2)[0]) == 0


def test_z_normalized_columns_centered():
    rng = np.random.default_rng(0)
    ds = VectorDataset.from_dense(rng.normal(size=(30, 4)) * 5 + 3)
    z = ds.z_normalized()
    dense = z.to_dense()
    assert np.allclose(dense.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(dense.std(axis=0), 1.0, atol=1e-9)


def test_subset_preserves_rows_and_labels():
    ds = VectorDataset.from_rows([{0: 1.0}, {1: 2.0}, {2: 3.0}], n_features=3,
                                 labels=[10, 20, 30])
    sub = ds.subset([2, 0])
    assert sub.n_rows == 2
    assert sub.row_dict(0) == {2: 3.0}
    assert sub.row_dict(1) == {0: 1.0}
    assert sub.labels.tolist() == [30, 10]
    assert sub.n_features == ds.n_features


def test_binarized_sets_all_weights_to_one():
    ds = VectorDataset.from_rows([{0: 5.0, 1: 0.2}], n_features=2)
    binary = ds.binarized()
    assert binary.row(0)[1].tolist() == [1.0, 1.0]


def test_labels_length_mismatch_raises():
    with pytest.raises(ValueError):
        VectorDataset.from_rows([{0: 1.0}], labels=[1, 2])


def test_characteristics_fields():
    ds = VectorDataset.from_rows([{0: 1.0, 1: 1.0}], n_features=10, name="x")
    chars = ds.characteristics()
    assert chars["name"] == "x"
    assert chars["vectors"] == 1
    assert chars["dimensions"] == 10
    assert chars["nnz"] == 2


def test_invalid_csr_arrays_rejected():
    with pytest.raises(ValueError):
        VectorDataset([0, 2], [0], [1.0], 3)
    with pytest.raises(ValueError):
        VectorDataset([0, 1], [5], [1.0], 3)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.dictionaries(st.integers(0, 20),
                                st.floats(0.1, 10.0, allow_nan=False),
                                max_size=8), min_size=1, max_size=15))
def test_property_round_trip_through_dense(rows):
    ds = VectorDataset.from_rows(rows, n_features=21)
    dense = ds.to_dense()
    rebuilt = VectorDataset.from_dense(dense)
    assert np.allclose(rebuilt.to_dense(), dense)
    assert ds.nnz == sum(len(r) for r in rows)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.dictionaries(st.integers(0, 15),
                                st.floats(0.1, 5.0, allow_nan=False),
                                min_size=1, max_size=6), min_size=2, max_size=10))
def test_property_subset_of_all_rows_is_identity(rows):
    ds = VectorDataset.from_rows(rows, n_features=16)
    sub = ds.subset(range(ds.n_rows))
    assert np.allclose(sub.to_dense(), ds.to_dense())


# --------------------------------------------------------------------- #
# append_rows (the incremental-ingest primitive)
# --------------------------------------------------------------------- #

def test_append_rows_concatenates_and_records_the_delta():
    parent = VectorDataset.from_rows([{0: 1.0}, {1: 2.0}], n_features=3)
    child = parent.append_rows([{2: 3.0}])
    assert child.n_rows == 3
    assert np.allclose(child.to_dense(),
                       [[1.0, 0, 0], [0, 2.0, 0], [0, 0, 3.0]])
    delta = child.parent_delta
    assert delta is not None
    assert (delta.parent_rows, delta.child_rows, delta.n_new) == (2, 3, 1)
    assert delta.parent_fingerprint == parent.fingerprint()
    assert delta.child_fingerprint == child.fingerprint()
    assert delta.new_rows == range(2, 3)
    # The parent is untouched and carries no delta.
    assert parent.n_rows == 2
    assert parent.parent_delta is None


def test_append_rows_matches_independently_built_concatenation():
    rows = [{0: 1.0, 2: 0.5}, {1: 2.0}, {0: 3.0, 1: 1.0}, {2: 4.0}]
    whole = VectorDataset.from_rows(rows, n_features=3)
    parent = VectorDataset.from_rows(rows[:2], n_features=3)
    child = parent.append_rows(rows[2:])
    assert child.fingerprint() == whole.fingerprint()


def test_append_rows_accepts_a_vector_dataset_tail():
    parent = VectorDataset.from_rows([{0: 1.0}], n_features=2)
    tail = VectorDataset.from_rows([{1: 2.0}], n_features=2)
    child = parent.append_rows(tail)
    assert child.n_rows == 2
    assert child.parent_delta.n_new == 1
    mismatched = VectorDataset.from_rows([{0: 1.0}], n_features=5)
    with pytest.raises(ValueError, match="features"):
        parent.append_rows(mismatched)


def test_append_rows_label_handling():
    labelled = VectorDataset.from_rows([{0: 1.0}, {1: 1.0}], n_features=2,
                                       labels=["a", "b"])
    child = labelled.append_rows([{0: 2.0}], labels=["c"])
    assert child.labels.tolist() == ["a", "b", "c"]
    with pytest.raises(ValueError, match="labels"):
        labelled.append_rows([{0: 2.0}])          # missing labels
    unlabelled = VectorDataset.from_rows([{0: 1.0}], n_features=2)
    with pytest.raises(ValueError, match="labels"):
        unlabelled.append_rows([{0: 2.0}], labels=["c"])


def test_append_zero_rows_keeps_labels_and_yields_empty_delta():
    labelled = VectorDataset.from_rows([{0: 1.0}, {1: 1.0}], n_features=2,
                                       labels=["a", "b"])
    child = labelled.append_rows([])
    assert child.n_rows == 2
    assert child.labels.tolist() == ["a", "b"]
    assert child.parent_delta.n_new == 0
    assert child.fingerprint() == labelled.fingerprint()
