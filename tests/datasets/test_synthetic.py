"""Tests for synthetic dense dataset generators."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors, make_toy_dataset, make_uci_like
from repro.datasets.synthetic import UCI_PROFILES
from repro.similarity import pairwise_similarity_matrix


def test_clustered_vectors_shape_and_labels():
    ds = make_clustered_vectors(60, 5, 3, seed=0)
    assert ds.n_rows == 60
    assert ds.n_features == 5
    assert ds.labels is not None
    assert set(ds.labels.tolist()) <= {0, 1, 2}


def test_clustered_vectors_deterministic():
    a = make_clustered_vectors(40, 4, 2, seed=9)
    b = make_clustered_vectors(40, 4, 2, seed=9)
    assert np.allclose(a.to_dense(), b.to_dense())


def test_clustered_vectors_noise_rows_labeled_minus_one():
    ds = make_clustered_vectors(100, 4, 2, noise_fraction=0.2, seed=1)
    assert int(np.count_nonzero(ds.labels == -1)) == 20


def test_clustered_vectors_cluster_cohesion():
    """Within-cluster cosine similarity should exceed between-cluster."""
    ds = make_clustered_vectors(90, 8, 3, separation=6.0, cluster_std=0.5, seed=3)
    sims = pairwise_similarity_matrix(ds)
    labels = ds.labels
    within, between = [], []
    for i in range(ds.n_rows):
        for j in range(i + 1, ds.n_rows):
            (within if labels[i] == labels[j] else between).append(sims[i, j])
    assert np.mean(within) > np.mean(between) + 0.3


def test_clustered_vectors_invalid_args():
    with pytest.raises(ValueError):
        make_clustered_vectors(10, 3, 2, noise_fraction=1.5)
    with pytest.raises(ValueError):
        make_clustered_vectors(0, 3, 2)
    with pytest.raises(ValueError):
        make_clustered_vectors(10, 3, 2, weights=[1.0])


def test_toy_dataset_matches_paper_shape():
    ds = make_toy_dataset()
    assert ds.n_rows == 50
    assert ds.n_features == 3
    assert ds.name == "d1-toy"
    dense = ds.to_dense()
    assert dense.min() > 0.0
    assert dense.max() < 1.0


def test_uci_like_respects_profile_dimensions():
    ds = make_uci_like("wine", seed=0)
    assert ds.n_features == UCI_PROFILES["wine"]["n_features"]
    assert ds.n_rows == UCI_PROFILES["wine"]["n_rows"]


def test_uci_like_scaling():
    full = make_uci_like("abalone", scale=1.0, seed=0)
    small = make_uci_like("abalone", scale=0.1, seed=0)
    assert small.n_rows < full.n_rows
    assert small.n_features == full.n_features


def test_uci_like_unknown_profile():
    with pytest.raises(KeyError):
        make_uci_like("not-a-dataset")
