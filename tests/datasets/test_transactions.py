"""Tests for transaction databases and their generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    TransactionDatabase,
    make_labeled_transactions,
    make_planted_transactions,
    make_weblike_graph_transactions,
)


def test_transactions_basic_properties():
    db = TransactionDatabase([[1, 2, 3], [2, 3], [5]], n_labels=10)
    assert db.n_transactions == 3
    assert db.size == 6
    assert db.average_length == pytest.approx(2.0)
    assert db.transaction(0) == (1, 2, 3)


def test_transactions_deduplicate_and_sort_items():
    db = TransactionDatabase([[3, 1, 3, 2]])
    assert db.transaction(0) == (1, 2, 3)


def test_transactions_reject_negative_items():
    with pytest.raises(ValueError):
        TransactionDatabase([[-1, 2]])


def test_transactions_reject_small_label_universe():
    with pytest.raises(ValueError):
        TransactionDatabase([[5]], n_labels=3)


def test_support_counts():
    db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3], [4]])
    assert db.support([1, 2]) == 2
    assert db.support([2]) == 3
    assert db.support([]) == 4
    assert db.support([9]) == 0


def test_item_frequencies():
    db = TransactionDatabase([[1, 2], [2, 3]])
    assert db.item_frequencies() == {1: 1, 2: 2, 3: 1}


def test_subset_and_sample():
    db = TransactionDatabase([[i] for i in range(20)], labels=list(range(20)))
    sub = db.subset([3, 5])
    assert sub.n_transactions == 2
    assert sub.labels == [3, 5]
    sampled = db.sample(0.5, seed=1)
    assert sampled.n_transactions == 10


def test_sample_rejects_bad_fraction():
    db = TransactionDatabase([[1]])
    with pytest.raises(ValueError):
        db.sample(0.0)


def test_from_graph_adjacency():
    adjacency = {0: [1, 2], 1: [0], 2: [0]}
    db = TransactionDatabase.from_graph_adjacency(adjacency)
    assert db.n_transactions == 3
    assert db.transaction(0) == (1, 2)
    assert db.n_labels == 3


def test_planted_transactions_contain_frequent_patterns():
    db = make_planted_transactions(200, 80, n_patterns=5,
                                   pattern_support=(0.2, 0.3), seed=5)
    frequencies = db.item_frequencies()
    # At least one item appears in >= 15% of transactions (a planted pattern).
    assert max(frequencies.values()) >= 0.15 * db.n_transactions


def test_planted_transactions_density_levels():
    sparse = make_planted_transactions(100, 200, density="sparse", seed=1)
    dense = make_planted_transactions(100, 200, density="dense", seed=1)
    assert dense.average_length > sparse.average_length


def test_planted_transactions_invalid_density():
    with pytest.raises(ValueError):
        make_planted_transactions(10, 10, density="other")


def test_weblike_graph_transactions_structure():
    db = make_weblike_graph_transactions(150, avg_degree=8, seed=2)
    assert db.n_transactions == 150
    assert db.n_labels == 150
    assert db.average_length > 1


def test_labeled_transactions_have_labels():
    db = make_labeled_transactions(120, 60, 3, seed=4)
    assert db.labels is not None
    assert set(db.labels) == {0, 1, 2}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.lists(st.integers(0, 30), max_size=8), min_size=1, max_size=20))
def test_property_size_is_sum_of_unique_lengths(rows):
    db = TransactionDatabase(rows)
    assert db.size == sum(len(set(r)) for r in rows)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.lists(st.integers(0, 15), min_size=1, max_size=6),
                min_size=1, max_size=15),
       st.lists(st.integers(0, 15), min_size=1, max_size=3))
def test_property_support_monotone_in_itemset_size(rows, itemset):
    """Support of a superset never exceeds support of a subset."""
    db = TransactionDatabase(rows)
    full = db.support(itemset)
    for item in itemset:
        assert db.support([item]) >= full
