"""End-to-end integration: the full PLASMA-HD workflow across subsystems.

One scenario exercises the whole stack the way the dissertation's Figure 1.1
wires it together: probe a dataset with BayesLSH (Chapter 2), read visual
cues and a threshold suggestion off the knowledge cache, estimate a dense
graph measure with the Graph Growth predictor (Chapter 3), measure
clusterability with LAM compressibility (Chapter 4) and de-clutter a
parallel-coordinates view of the same data (Chapter 5).
"""

import numpy as np
import pytest

from repro.core import PlasmaSession
from repro.datasets import make_clustered_vectors
from repro.growth import GraphGrowthEstimator
from repro.lam import LAM, compressibility_scan
from repro.parcoords import ParallelCoordinatesModel
from repro.similarity import exact_pair_count


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(100, 10, 4, separation=5.0, cluster_std=0.8,
                                  seed=201, name="end-to-end")


def test_full_plasma_hd_workflow(dataset):
    # --- Chapter 2: probe, cache, cue, suggest -------------------------- #
    session = PlasmaSession(dataset.l2_normalized(), n_hashes=160, seed=1)
    first = session.probe(0.9)
    assert first.pair_count > 0

    suggestion = session.suggest_threshold()
    assert 0.0 < suggestion < 1.0
    session.probe(round(max(suggestion, 0.05), 2))

    grid = [0.5, 0.7, 0.9]
    exact = exact_pair_count(dataset.l2_normalized(), grid)
    errors = session.cumulative_graph().relative_error_against(exact)
    assert np.mean(list(errors.values())) < 0.6

    cues = session.triangle_histogram(0.9)
    assert cues.counts.sum() == dataset.n_rows

    # --- Chapter 3: predict an expensive measure of the dense graphs ---- #
    growth = GraphGrowthEstimator(measure="triangle_count", sample_size=50,
                                  prediction_method="regression", seed=2)
    estimate = growth.run(dataset)
    assert estimate.error()[0] < 0.2

    # --- Chapter 4: compressibility across thresholds ------------------- #
    points, _ = compressibility_scan(dataset, [0.5, 0.7, 0.9],
                                     lam=LAM(n_passes=2, max_partition_size=100))
    ratios = [p.compression_ratio for p in points if p.n_edges > 0]
    assert ratios and max(ratios) > 1.1

    # --- Chapter 5: de-cluttered parallel coordinates ------------------- #
    layout = ParallelCoordinatesModel().layout(dataset)
    assert layout.crossings_after_ordering <= layout.crossings_before
    assert all(np.all(np.diff(result.energy_history) <= 1e-9)
               for result in layout.energy_results)


def test_workflow_is_reproducible(dataset):
    """Two sessions with the same seed report identical pair counts."""
    normalized = dataset.l2_normalized()
    counts = []
    for _ in range(2):
        session = PlasmaSession(normalized, n_hashes=96, seed=9)
        counts.append(session.probe(0.9).pair_count)
    assert counts[0] == counts[1]
