"""Tests for repro.utils.validation."""

import pytest

from repro.utils import check_fraction, check_positive_int, check_threshold


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_check_fraction_accepts_valid(value):
    assert check_fraction(value, "v") == value


@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_check_fraction_rejects_out_of_range(value):
    with pytest.raises(ValueError):
        check_fraction(value, "v")


def test_check_fraction_exclusive_bounds():
    with pytest.raises(ValueError):
        check_fraction(0.0, "v", inclusive_low=False)
    with pytest.raises(ValueError):
        check_fraction(1.0, "v", inclusive_high=False)


@pytest.mark.parametrize("value", [1, 5, 1000])
def test_check_positive_int_accepts(value):
    assert check_positive_int(value, "n") == value


@pytest.mark.parametrize("value", [0, -1, True, 1.5])
def test_check_positive_int_rejects(value):
    with pytest.raises(ValueError):
        check_positive_int(value, "n")


def test_check_threshold_bounds():
    assert check_threshold(0.5) == 0.5
    assert check_threshold(1.0) == 1.0
    with pytest.raises(ValueError):
        check_threshold(0.0)
    with pytest.raises(ValueError):
        check_threshold(1.5)
