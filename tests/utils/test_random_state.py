"""Tests for repro.utils.random_state."""

import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rngs


def test_ensure_rng_accepts_none():
    rng = ensure_rng(None)
    assert isinstance(rng, np.random.Generator)


def test_ensure_rng_accepts_int_seed_and_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.allclose(a, b)


def test_ensure_rng_passes_through_generator():
    rng = np.random.default_rng(7)
    assert ensure_rng(rng) is rng


def test_spawn_rngs_count_and_independence():
    children = spawn_rngs(3, 4)
    assert len(children) == 4
    draws = [child.random() for child in children]
    assert len(set(draws)) == 4


def test_spawn_rngs_deterministic_given_seed():
    first = [g.random() for g in spawn_rngs(5, 3)]
    second = [g.random() for g in spawn_rngs(5, 3)]
    assert first == second


def test_spawn_rngs_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)
