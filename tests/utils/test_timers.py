"""Tests for repro.utils.timers."""

import pytest

from repro.utils import PhaseTimer, Stopwatch


def test_stopwatch_accumulates_time():
    watch = Stopwatch()
    watch.start()
    elapsed = watch.stop()
    assert elapsed >= 0.0
    assert watch.total == pytest.approx(elapsed)


def test_stopwatch_double_start_raises():
    watch = Stopwatch()
    watch.start()
    with pytest.raises(RuntimeError):
        watch.start()


def test_stopwatch_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_phase_timer_records_phases():
    timer = PhaseTimer()
    with timer.phase("a"):
        pass
    with timer.phase("a"):
        pass
    with timer.phase("b"):
        pass
    assert timer.counts["a"] == 2
    assert timer.counts["b"] == 1
    assert timer.grand_total == pytest.approx(timer.totals["a"] + timer.totals["b"])


def test_phase_timer_fraction():
    timer = PhaseTimer()
    timer.add("x", 3.0)
    timer.add("y", 1.0)
    assert timer.fraction("x") == pytest.approx(0.75)
    assert timer.fraction("missing") == 0.0


def test_phase_timer_add_rejects_negative():
    with pytest.raises(ValueError):
        PhaseTimer().add("x", -1.0)


def test_phase_timer_empty_fraction_is_zero():
    assert PhaseTimer().fraction("anything") == 0.0
