"""Integration tests for the Graph Growth estimation pipeline."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.growth import GraphGrowthEstimator
from repro.growth.evaluation import log_measure_errors, mean_relative_error


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(150, 8, 4, separation=5.0, cluster_std=0.8,
                                  seed=71)


def test_mean_relative_error_basic():
    mean, std = mean_relative_error([100, 1000], [100, 1000])
    assert mean == 0.0 and std == 0.0
    mean, _ = mean_relative_error([1000], [100])
    assert mean == pytest.approx(0.5)


def test_log_measure_errors_shape_mismatch():
    with pytest.raises(ValueError):
        log_measure_errors([1, 2], [1])


def test_pipeline_translation_scaling(dataset):
    estimator = GraphGrowthEstimator(prediction_method="translation_scaling",
                                     sample_size=60, seed=1)
    result = estimator.run(dataset)
    mean_error, _ = result.error()
    # Paper band: a few percent up to ~28% for translation-scaling.
    assert mean_error < 0.35
    assert len(result.predicted_values) == len(result.actual_values)
    assert result.speedup() is not None


def test_pipeline_regression_beats_translation_scaling_on_average(dataset):
    """Chapter 3's headline: regression wins for 10 of 11 datasets."""
    errors = {}
    for method in ("translation_scaling", "regression"):
        per_seed = []
        for seed in (1, 2, 3):
            estimator = GraphGrowthEstimator(prediction_method=method,
                                             sample_size=60, seed=seed)
            per_seed.append(estimator.run(dataset).error()[0])
        errors[method] = np.mean(per_seed)
    assert errors["regression"] <= errors["translation_scaling"] + 0.02


def test_pipeline_all_sampling_methods_run(dataset):
    for method in ("random", "concentrated", "stratified"):
        estimator = GraphGrowthEstimator(sampling_method=method, sample_size=50,
                                         seed=2)
        result = estimator.run(dataset, compute_ground_truth=False)
        assert result.actual_values is None
        assert result.error() is None
        assert all(v > 0 for v in result.predicted_values)


def test_pipeline_other_measures_supported(dataset):
    estimator = GraphGrowthEstimator(measure="edge_count", sample_size=50, seed=3)
    result = estimator.run(dataset)
    # Edge count of the full series is known exactly by construction, so the
    # predictions should be very close.
    assert result.error()[0] < 0.2


def test_pipeline_rejects_bad_arguments():
    with pytest.raises(ValueError):
        GraphGrowthEstimator(prediction_method="extrapolate")
    with pytest.raises(ValueError):
        GraphGrowthEstimator(sample_size=0)


def test_pipeline_sample_larger_than_dataset_is_clamped():
    small = make_clustered_vectors(40, 5, 2, seed=72)
    estimator = GraphGrowthEstimator(sample_size=500, seed=1)
    result = estimator.run(small, compute_ground_truth=False)
    assert result.metadata["sample_size"] == 40
