"""Tests for edge-count schedules and densifying series."""

import pytest

from repro.datasets import make_clustered_vectors
from repro.growth import build_densifying_series, edge_count_schedule


def test_edge_count_schedule_doubles_and_caps():
    schedule = edge_count_schedule(100)
    assert schedule[0] == 100
    assert schedule[1] == 200
    # Doubles until capped at the complete-graph edge count.
    assert schedule[-1] == 100 * 99 // 2
    for a, b in zip(schedule, schedule[1:-1]):
        assert b == 2 * a


def test_edge_count_schedule_respects_n_steps():
    schedule = edge_count_schedule(100, n_steps=4)
    assert len(schedule) == 4
    assert schedule == [100, 200, 400, 800]


def test_edge_count_schedule_small_graph():
    schedule = edge_count_schedule(4)
    assert schedule[-1] == 6
    assert all(count <= 6 for count in schedule)


def test_edge_count_schedule_rejects_non_positive_multiplier():
    # base_multiplier=0 used to loop forever when n_steps is None: every
    # count stayed at 0, never reaching the complete-graph cap.
    with pytest.raises(ValueError, match="base_multiplier"):
        edge_count_schedule(100, base_multiplier=0)
    with pytest.raises(ValueError, match="base_multiplier"):
        edge_count_schedule(100, n_steps=3, base_multiplier=-2)


def test_edge_count_schedule_multiplier_scales_schedule():
    schedule = edge_count_schedule(100, n_steps=3, base_multiplier=2)
    assert schedule == [200, 400, 800]


def test_data_driven_series_edges_increase():
    ds = make_clustered_vectors(60, 6, 3, seed=61)
    series = build_densifying_series(ds, n_steps=4)
    assert series.source == "data"
    counts = series.actual_edge_counts()
    assert counts == sorted(counts)
    assert len(series) == 4


def test_data_driven_series_measure_memoised():
    ds = make_clustered_vectors(40, 5, 2, seed=62)
    series = build_densifying_series(ds, n_steps=3)
    first = series.measures("triangle_count")
    second = series.measures("triangle_count")
    assert first is second
    assert len(first) == 3


def test_model_series_requires_model_name():
    with pytest.raises(ValueError):
        build_densifying_series(50, n_steps=3)


def test_model_series_edge_counts():
    series = build_densifying_series(50, n_steps=4, model="erdos_renyi", seed=1)
    assert series.source == "erdos_renyi"
    actual = series.actual_edge_counts()
    assert actual == series.edge_counts[:len(actual)]


def test_split_sparse_dense_partitions_series():
    ds = make_clustered_vectors(40, 5, 2, seed=63)
    series = build_densifying_series(ds, n_steps=6)
    sparse, dense = series.split_sparse_dense()
    assert sparse + dense == list(range(6))
    assert len(sparse) == 3
