"""Tests for the growth prediction models."""

import math

import numpy as np
import pytest

from repro.growth import (
    PiecewiseRegressionPredictor,
    TranslationScalingPredictor,
    analytic_complete_value,
)
from repro.graphs import Graph
from repro.graphs.measures import compute_measure


@pytest.mark.parametrize("measure,expected", [
    ("edge_count", 45),
    ("triangle_count", math.comb(10, 3)),
    ("clique_number", 10),
    ("diameter", 1),
    ("mean_degree", 9),
    ("number_connected_components", 1),
])
def test_analytic_complete_values(measure, expected):
    assert analytic_complete_value(measure, 10) == expected


def test_analytic_complete_value_matches_explicit_graph():
    n = 8
    complete = Graph(n, edges=[(i, j) for i in range(n) for j in range(i + 1, n)])
    for measure in ("triangle_count", "average_clustering", "mean_core_number",
                    "top_eigenvalue"):
        assert analytic_complete_value(measure, n) == pytest.approx(
            compute_measure(complete, measure), rel=0.02)


def test_translation_scaling_recovers_scaled_curve():
    """If the real curve is an exact scaling of the sample curve, TS is exact."""
    xs = np.linspace(0, 10, 12)
    sample = 10.0 ** (0.3 * xs + 1.0)
    real = sample ** 1.0 * 100.0  # constant factor in linear space = shift in log space
    predictor = TranslationScalingPredictor()
    predictor.fit(xs, sample, real_first_y=real[0], real_last_y=real[-1], real_x=xs)
    predicted = predictor.predict(xs, sample)
    assert np.allclose(np.log10(predicted), np.log10(real), atol=1e-6)


def test_translation_scaling_requires_two_points():
    with pytest.raises(ValueError):
        TranslationScalingPredictor().fit([1.0], [2.0], 1.0, 5.0)


def test_translation_scaling_predict_before_fit():
    with pytest.raises(RuntimeError):
        TranslationScalingPredictor().predict([1.0], [2.0])


def test_translation_scaling_flat_sample_curve():
    predictor = TranslationScalingPredictor(log_space=False)
    predictor.fit([0, 1, 2], [5.0, 5.0, 5.0], real_first_y=10.0, real_last_y=20.0)
    assert np.allclose(predictor.predict([0, 2], [5.0, 5.0]), 10.0)


def test_regression_learns_constant_log_offset():
    """real = sample * C (log offset) is recovered and extrapolates."""
    xs = np.arange(1, 13, dtype=float)
    sample = 10.0 ** (0.5 * xs)
    real = sample * 1000.0
    half = 6
    predictor = PiecewiseRegressionPredictor()
    predictor.fit(xs[:half], sample[:half], xs[:half], real[:half])
    predicted = predictor.predict(xs[half:], sample[half:], xs[half:])
    log_error = np.abs(np.log10(predicted) - np.log10(real[half:]))
    assert log_error.max() < 0.2


def test_regression_validation():
    with pytest.raises(ValueError):
        PiecewiseRegressionPredictor(n_pieces=1)
    with pytest.raises(ValueError):
        PiecewiseRegressionPredictor(ridge=-1.0)
    predictor = PiecewiseRegressionPredictor()
    with pytest.raises(ValueError):
        predictor.fit([1, 2], [1, 2], [1, 2], [1, 2, 3])
    with pytest.raises(RuntimeError):
        predictor.predict([1], [1], [1])


def test_regression_linear_space_mode():
    xs = np.arange(10, dtype=float)
    sample = 2.0 * xs + 1.0
    real = 4.0 * xs + 3.0
    predictor = PiecewiseRegressionPredictor(log_space=False, ridge=1e-6)
    predictor.fit(xs[:6], sample[:6], xs[:6], real[:6])
    predicted = predictor.predict(xs[6:], sample[6:], xs[6:])
    assert np.allclose(predicted, real[6:], rtol=0.05)
