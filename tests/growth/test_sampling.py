"""Tests for the three node-sampling methods."""

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.growth import (
    concentrated_sample,
    random_sample,
    sample_dataset,
    stratified_sample,
)
from repro.similarity import pairwise_similarity_matrix


@pytest.fixture(scope="module")
def dataset():
    return make_clustered_vectors(150, 6, 5, separation=5.0, seed=51)


@pytest.mark.parametrize("sampler", [random_sample, concentrated_sample,
                                     stratified_sample])
def test_samples_have_requested_size_and_valid_ids(dataset, sampler):
    ids = sampler(dataset, 40, seed=1)
    assert len(ids) == 40
    assert len(set(ids)) == 40
    assert min(ids) >= 0 and max(ids) < dataset.n_rows


@pytest.mark.parametrize("sampler", [random_sample, concentrated_sample,
                                     stratified_sample])
def test_samples_deterministic_given_seed(dataset, sampler):
    assert sampler(dataset, 30, seed=7) == sampler(dataset, 30, seed=7)


def test_sample_size_validation(dataset):
    with pytest.raises(ValueError):
        random_sample(dataset, 0)
    with pytest.raises(ValueError):
        random_sample(dataset, dataset.n_rows + 1)


def test_concentrated_sample_is_more_cohesive_than_random(dataset):
    """Concentrated sampling picks a blob of mutually similar records."""
    sims = pairwise_similarity_matrix(dataset)

    def mean_similarity(ids):
        ids = list(ids)
        values = [sims[i, j] for i in ids for j in ids if i < j]
        return float(np.mean(values))

    concentrated = concentrated_sample(dataset, 30, seed=3)
    random_ids = random_sample(dataset, 30, seed=3)
    assert mean_similarity(concentrated) > mean_similarity(random_ids)


def test_stratified_sample_covers_clusters(dataset):
    """Every ground-truth cluster contributes at least one sampled record."""
    ids = stratified_sample(dataset, 50, seed=5)
    sampled_labels = set(dataset.labels[ids].tolist())
    assert sampled_labels == set(dataset.labels.tolist())


def test_sample_dataset_wrapper(dataset):
    sub = sample_dataset(dataset, 25, method="random", seed=2)
    assert sub.n_rows == 25
    assert sub.n_features == dataset.n_features
    with pytest.raises(KeyError):
        sample_dataset(dataset, 25, method="snowball")
