"""Tier-1 enforcement of the pydocstyle-lite (D1xx) documentation floor.

Runs ``tools/check_docstrings.py`` over its default roots (the public
similarity, store, LSH, core-session and service seams) — the same check
CI runs as a standalone step — so a public symbol without at least a
one-line summary fails the default test lane too, not just the docs job.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docstrings  # noqa: E402 - path set up above

CHECKED_ROOTS = [REPO_ROOT / root for root in check_docstrings.DEFAULT_ROOTS]


def test_default_roots_cover_all_refactored_layers():
    assert [str(r) for r in check_docstrings.DEFAULT_ROOTS] == [
        "src/repro/similarity", "src/repro/store",
        "src/repro/lsh", "src/repro/core", "src/repro/service"]


def test_public_similarity_and_store_seams_are_documented():
    findings = check_docstrings.check_tree(CHECKED_ROOTS)
    assert findings == [], (
        "public symbols missing docstrings (run "
        "`python tools/check_docstrings.py` for the list):\n"
        + "\n".join(findings))


def test_checker_flags_each_d1xx_rule(tmp_path):
    """The checker itself must catch every rule it claims to enforce."""
    offender = tmp_path / "offender.py"
    offender.write_text(
        "class Exposed:\n"
        "    def method(self):\n"
        "        pass\n"
        "    def _private(self):\n"
        "        pass\n"
        "    def __repr__(self):\n"
        "        return ''\n"
        "def helper():\n"
        "    pass\n"
        "def _hidden():\n"
        "    pass\n")
    codes = sorted(code for _, code, _ in
                   check_docstrings.check_source(offender,
                                                 offender.read_text()))
    assert codes == ["D100", "D101", "D102", "D103"]

    documented = tmp_path / "documented.py"
    documented.write_text(
        '"""Module."""\n'
        "class Exposed:\n"
        '    """Class."""\n'
        "    def method(self):\n"
        '        """Method."""\n'
        "def helper():\n"
        '    """Function."""\n')
    assert check_docstrings.check_source(documented,
                                         documented.read_text()) == []
