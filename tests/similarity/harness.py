"""Deterministic test harness for the similarity engine suites.

Three things live here, shared by the parity, sharding and cache tests:

* **Seeded dataset factories** — every dataset is built from an explicit
  integer seed and carries that seed in its name, so any failure message or
  hypothesis falsifying example contains everything needed to rebuild the
  exact input.  ``sparse_random_dataset`` builds large sparse datasets
  directly in CSR form (one cheap index-draw per row, no topic model), which
  lets the 20k-row stress test construct its input in well under a second —
  versus tens of seconds through the corpus generator.

* **`ShardOrderReplayExecutor`** — an in-process stand-in for a process pool
  that *replays shard completions in adversarial orders*.  Futures are lazy:
  nothing runs at ``submit``; when the backend blocks on a future's
  ``result()``, the executor runs the still-pending tasks in the configured
  order (LIFO by default, an explicit permutation, or a seeded shuffle) until
  that future is done.  The recorded ``completion_order`` proves tasks really
  completed out of submission order, making shard-order merge bugs
  deterministic instead of once-in-a-blue-moon scheduler accidents.

* **Fault injection** — ``failures={submission_index: exception}`` makes the
  replay executor complete chosen tasks with an exception instead of a
  result, exercising the "a shard died mid-stream" path without real
  processes (the real-process path is covered via the backend's
  ``inject_shard_fault`` hook).

* **`StealOrderReplayExecutor`** — the work-stealing twin: a thread-backed
  executor that injects itself as the ``claim_gate`` of every steal runner it
  runs and *fully serialises claims* — at any instant exactly one worker is
  between "granted a claim turn" and "parked waiting for the next one", so
  the interleaving of claims (and therefore who steals what from whom) is a
  deterministic function of the configured policy: LIFO/FIFO/seeded-random/
  explicit slot orders, *virtual-time* stragglers (``delays`` — no real
  sleeping), and per-shard claim-time failures.
"""

from __future__ import annotations

import glob
import os
import threading
from concurrent.futures import Future

import numpy as np

from repro.datasets import VectorDataset, make_clustered_vectors, make_sparse_corpus

__all__ = [
    "seeded_clustered",
    "seeded_corpus",
    "sparse_random_dataset",
    "append_split",
    "own_shm_entries",
    "ShardOrderReplayExecutor",
    "replay_factory",
    "StealOrderReplayExecutor",
    "steal_replay_factory",
]


def own_shm_entries() -> list[str]:
    """Shared-memory segments this process currently owns, by name.

    The leak oracle for the shared-memory transport tests: on Linux it lists
    ``/dev/shm`` entries carrying this process's segment prefix (so a leak is
    visible to the OS, not just to our bookkeeping); elsewhere it falls back
    to the transport module's own registry.
    """
    from repro.similarity import shm

    if os.path.isdir("/dev/shm"):
        pattern = os.path.join("/dev/shm", shm.SEGMENT_PREFIX + "*")
        return sorted(os.path.basename(path) for path in glob.glob(pattern))
    return sorted(shm.active_segment_names())


# --------------------------------------------------------------------- #
# Seeded dataset factories
# --------------------------------------------------------------------- #

def seeded_clustered(seed: int, n_rows: int = 24, n_features: int = 8,
                     n_clusters: int = 3, **kwargs) -> VectorDataset:
    """A clustered dense dataset whose name carries its seed."""
    return make_clustered_vectors(n_rows, n_features, n_clusters,
                                  seed=int(seed), **kwargs)


def seeded_corpus(seed: int, n_docs: int = 60, vocabulary_size: int = 240,
                  **kwargs) -> VectorDataset:
    """A sparse topic corpus whose name carries its seed."""
    kwargs.setdefault("avg_doc_length", 14)
    kwargs.setdefault("n_topics", 4)
    return make_sparse_corpus(n_docs, vocabulary_size, seed=int(seed), **kwargs)


def sparse_random_dataset(seed: int, n_rows: int, n_features: int,
                          density: float, n_clusters: int = 0) -> VectorDataset:
    """A seed-named sparse dataset built directly in CSR form.

    One ``rng.choice`` index draw per row — cheap enough for 20k rows in
    well under a second.  With ``n_clusters > 0`` rows are biased toward
    per-cluster feature bands so realistic numbers of pairs clear
    interesting thresholds even at 20k rows; with ``n_clusters = 0``
    features are uniform.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    lengths = np.maximum(1, rng.binomial(n_features, density, size=n_rows))
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.empty(indptr[-1], dtype=np.int64)
    if n_clusters > 0:
        band = max(1, n_features // n_clusters)
        clusters = rng.integers(0, n_clusters, size=n_rows)
    for i in range(n_rows):
        if n_clusters > 0 and rng.random() < 0.8:
            start = int(clusters[i]) * band
            pool = min(band, n_features - start)
            chosen = start + rng.choice(pool, size=min(lengths[i], pool),
                                        replace=False)
            if len(chosen) < lengths[i]:
                lengths[i] = len(chosen)
        else:
            chosen = rng.choice(n_features, size=lengths[i], replace=False)
        indices[indptr[i]:indptr[i] + len(chosen)] = np.sort(chosen)
    # Re-pack in case cluster bands shortened any row.
    packed = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.concatenate(
        [indices[indptr[i]:indptr[i] + lengths[i]] for i in range(n_rows)])
    data = rng.random(packed[-1]) + 0.1
    return VectorDataset(packed, indices, data, n_features,
                         name=f"sparse-random[seed={int(seed)},rows={n_rows}]")


def append_split(dataset: VectorDataset, k: int) -> tuple[VectorDataset, VectorDataset]:
    """Split *dataset* into a parent and an appended child for delta tests.

    Returns ``(parent, child)`` where *parent* holds all but the last *k*
    rows and *child* is ``parent.append_rows(<last k rows>)`` — so *child*
    is **content-identical** to *dataset* (same fingerprint, so any failure
    replays from the factory seed embedded in the dataset name) but carries
    the ``parent_delta`` provenance the incremental-ingest path consumes.
    """
    n = dataset.n_rows
    if not 0 < k < n:
        raise ValueError(f"k must be in (0, {n}) to split {n} rows")
    parent = dataset.subset(range(n - k), name=f"{dataset.name}[:-{k}]")
    tail = dataset.subset(range(n - k, n), name=f"{dataset.name}[-{k}:]")
    child = parent.append_rows(tail, name=dataset.name)
    assert child.fingerprint() == dataset.fingerprint(), \
        "append_split must reproduce the dataset content exactly"
    return parent, child


# --------------------------------------------------------------------- #
# Adversarial shard-order replay executor
# --------------------------------------------------------------------- #

class _LazyFuture(Future):
    """A future that drives its executor's replay loop when waited on."""

    def __init__(self, executor: "ShardOrderReplayExecutor", index: int) -> None:
        super().__init__()
        self._replay_executor = executor
        self._replay_index = index

    def result(self, timeout=None):
        self._replay_executor._run_until(self._replay_index)
        return super().result(timeout)

    def exception(self, timeout=None):
        self._replay_executor._run_until(self._replay_index)
        return super().exception(timeout)


class ShardOrderReplayExecutor:
    """Deterministic executor replaying task completions adversarially.

    Parameters
    ----------
    order:
        ``"lifo"`` (default — the most adversarial simple order: the *last*
        submitted pending task completes first), ``"fifo"``, an explicit
        sequence of submission indices (tasks listed earlier complete
        earlier; unlisted tasks fall back to FIFO), or ``("random", seed)``
        for a seeded shuffle.
    failures:
        Mapping ``{submission_index: exception}``; those tasks complete with
        the exception instead of running.

    Attributes
    ----------
    completion_order:
        Submission indices in the order tasks actually completed — assert on
        this to prove the replay really was out of order.
    """

    def __init__(self, order="lifo", failures: dict | None = None) -> None:
        self._tasks: list[tuple[_LazyFuture, object, tuple, dict]] = []
        self.completion_order: list[int] = []
        self.failures = dict(failures or {})
        self._rng = None
        if isinstance(order, tuple) and len(order) == 2 and order[0] == "random":
            self._rng = np.random.default_rng(order[1])
            self._order = "random"
        else:
            self._order = order

    @property
    def submitted(self) -> int:
        return len(self._tasks)

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future = _LazyFuture(self, len(self._tasks))
        self._tasks.append((future, fn, args, kwargs))
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        if cancel_futures:
            for future, *_ in self._tasks:
                future.cancel()

    # -- replay machinery ---------------------------------------------- #
    def _pending(self) -> list[int]:
        return [i for i, (future, *_rest) in enumerate(self._tasks)
                if not future.done()]

    def _pick(self, pending: list[int]) -> int:
        if self._order == "lifo":
            return pending[-1]
        if self._order == "fifo":
            return pending[0]
        if self._order == "random":
            return int(self._rng.choice(pending))
        for index in self._order:
            if index in pending:
                return index
        return pending[0]

    def _run_one(self, index: int) -> None:
        future, fn, args, kwargs = self._tasks[index]
        if not future.set_running_or_notify_cancel():
            return  # cancelled counts as done; nothing to run
        if index in self.failures:
            future.set_exception(self.failures[index])
        else:
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via future
                future.set_exception(exc)
        self.completion_order.append(index)

    def _run_until(self, index: int) -> None:
        while not self._tasks[index][0].done():
            self._run_one(self._pick(self._pending()))


def replay_factory(order="lifo", failures: dict | None = None):
    """An ``executor_factory`` for the sharded backend, recording instances.

    The factory ignores the worker count (everything runs in-process) and
    exposes every executor it built on ``factory.created`` so tests can
    assert on the recorded ``completion_order`` after the search returns.
    """
    created: list[ShardOrderReplayExecutor] = []

    def factory(n_workers: int) -> ShardOrderReplayExecutor:
        executor = ShardOrderReplayExecutor(order=order, failures=failures)
        created.append(executor)
        return executor

    factory.created = created
    return factory


# --------------------------------------------------------------------- #
# Adversarial steal-order replay executor
# --------------------------------------------------------------------- #

class StealOrderReplayExecutor:
    """Thread-backed executor that serialises work-stealing claim turns.

    The sharded backend submits one steal *runner* per worker slot, each with
    a ``claim_gate=None`` keyword.  This executor replaces that keyword with
    itself, so every runner calls back into ``acquire(worker_slot)`` before
    each claim attempt and ``claimed(worker_slot, item)`` after each
    successful claim.  ``acquire`` parks the worker until the arbiter grants
    it a turn; a turn lasts from the grant until the worker parks again (or
    its runner finishes), so claims — and the shard computations between
    them — are *fully serialised*: the claim interleaving is a deterministic
    function of the policy, never of OS scheduling.

    Parameters
    ----------
    order:
        Which parked worker gets the next turn: ``"fifo"`` (lowest slot,
        default), ``"lifo"`` (highest slot), ``("random", seed)`` for a
        seeded choice, or an explicit slot sequence (earlier entries win;
        unlisted slots fall back to lowest-first).
    delays:
        ``{worker_slot: cost_factor}`` virtual-time stragglers: each turn
        advances the granted worker's virtual clock by its factor (default
        ``1.0``) and the next turn goes to the worker with the *smallest*
        clock — a factor-10 worker therefore gets roughly a tenth of the
        claim turns, with zero real sleeping.  When given, ``delays``
        selection overrides *order*.
    failures:
        ``{shard_item: exception}`` raised from ``claimed`` right after that
        shard's claim file is created — the claim-time fault path
        (``ClaimFault`` → ``_StolenShardFailure`` → ``ShardExecutionError``).

    Attributes
    ----------
    claims:
        ``{worker_slot: [shard_items]}`` in claim order, per worker.
    claim_order:
        ``[(worker_slot, shard_item), ...]`` across all workers — assert on
        this to prove the replay forced the interleaving you asked for.
    """

    def __init__(self, order="fifo", delays: dict | None = None,
                 failures: dict | None = None,
                 expected_runners: int | None = None) -> None:
        self.delays = dict(delays or {})
        self.failures = dict(failures or {})
        #: Grants are held until this many gated runners were submitted, so
        #: an early-starting runner cannot drain the queue before its peers
        #: are even submitted (the factory wires this to ``n_workers``).
        self.expected_runners = expected_runners
        self.claims: dict[int, list[int]] = {}
        self.claim_order: list[tuple[int, int]] = []
        self._rng = None
        if isinstance(order, tuple) and len(order) == 2 and order[0] == "random":
            self._rng = np.random.default_rng(order[1])
            self._order = "random"
        else:
            self._order = order
        self._cond = threading.Condition()
        self._participants = 0        # live gate-using runner threads
        self._parked: set[int] = set()
        self._granted: int | None = None
        self._clock: dict[int, float] = {}
        self._closed = False
        self._slot_of: dict[int, int] = {}  # thread ident -> worker slot
        self._threads: list[threading.Thread] = []
        self._gated_seen = 0          # total gated runners ever submitted
        self._turn = 0                # cursor into an explicit order list
        self.submitted = 0

    # -- executor protocol --------------------------------------------- #
    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        self.submitted += 1
        gated = "claim_gate" in kwargs
        if gated:
            kwargs = dict(kwargs, claim_gate=self)
            with self._cond:
                self._participants += 1
                self._gated_seen += 1
                self._maybe_grant()
        thread = threading.Thread(
            target=self._run, args=(future, fn, args, kwargs, gated),
            daemon=True)
        self._threads.append(thread)
        thread.start()
        return future

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    def _run(self, future: Future, fn, args, kwargs, gated: bool) -> None:
        if not future.set_running_or_notify_cancel():
            if gated:
                self._retire()
            return
        try:
            result = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - relayed via future
            future.set_exception(exc)
        else:
            future.set_result(result)
        finally:
            if gated:
                self._retire()

    def _retire(self) -> None:
        with self._cond:
            self._participants -= 1
            slot = self._slot_of.pop(threading.get_ident(), None)
            if slot is not None:
                self._parked.discard(slot)
                if self._granted == slot:
                    self._granted = None
            self._maybe_grant()
            self._cond.notify_all()

    # -- claim-gate protocol ------------------------------------------- #
    def acquire(self, worker_slot: int) -> None:
        """Park until the arbiter grants *worker_slot* the next claim turn."""
        with self._cond:
            self._slot_of[threading.get_ident()] = worker_slot
            if self._granted == worker_slot:
                self._granted = None  # the previous turn ends here
            self._parked.add(worker_slot)
            self._maybe_grant()
            while not self._closed and self._granted != worker_slot:
                self._cond.wait(timeout=5.0)
                self._maybe_grant()
            self._parked.discard(worker_slot)

    def claimed(self, worker_slot: int, item: int) -> None:
        """Record a successful claim; raise the configured failure, if any."""
        with self._cond:
            self.claims.setdefault(worker_slot, []).append(item)
            self.claim_order.append((worker_slot, item))
        failure = self.failures.get(item)
        if failure is not None:
            raise failure

    # -- arbiter ------------------------------------------------------- #
    def _maybe_grant(self) -> None:
        """Grant the next turn once every live worker is parked (serialised)."""
        if self._granted is not None or self._closed:
            return
        if (self.expected_runners is not None
                and self._gated_seen < self.expected_runners):
            return  # a peer runner has not even been submitted yet
        if not self._parked or len(self._parked) < self._participants:
            return
        slot = self._pick(sorted(self._parked))
        self._clock[slot] = (self._clock.get(slot, 0.0)
                             + float(self.delays.get(slot, 1.0)))
        self._granted = slot
        self._cond.notify_all()

    def _pick(self, parked: list[int]) -> int:
        if self.delays:
            return min(parked,
                       key=lambda slot: (self._clock.get(slot, 0.0), slot))
        if self._order == "fifo":
            return parked[0]
        if self._order == "lifo":
            return parked[-1]
        if self._order == "random":
            return int(self._rng.choice(parked))
        # Explicit slot list: a turn *sequence*, consumed one entry per
        # grant; entries naming retired/absent slots are skipped, and the
        # tail past the script falls back to first-parked.
        while self._turn < len(self._order):
            slot = self._order[self._turn]
            self._turn += 1
            if slot in parked:
                return slot
        return parked[0]


def steal_replay_factory(order="fifo", delays: dict | None = None,
                         failures: dict | None = None):
    """An ``executor_factory`` building :class:`StealOrderReplayExecutor`s.

    Mirrors :func:`replay_factory`: ignores the worker count (runners are
    in-process threads) and records every executor on ``factory.created`` so
    tests can assert on ``claims``/``claim_order`` after the search returns.
    """
    created: list[StealOrderReplayExecutor] = []

    def factory(n_workers: int) -> StealOrderReplayExecutor:
        executor = StealOrderReplayExecutor(order=order, delays=delays,
                                            failures=failures,
                                            expected_runners=n_workers)
        created.append(executor)
        return executor

    factory.created = created
    return factory
