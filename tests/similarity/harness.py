"""Deterministic test harness for the similarity engine suites.

Three things live here, shared by the parity, sharding and cache tests:

* **Seeded dataset factories** — every dataset is built from an explicit
  integer seed and carries that seed in its name, so any failure message or
  hypothesis falsifying example contains everything needed to rebuild the
  exact input.  ``sparse_random_dataset`` builds large sparse datasets
  directly in CSR form (one cheap index-draw per row, no topic model), which
  lets the 20k-row stress test construct its input in well under a second —
  versus tens of seconds through the corpus generator.

* **`ShardOrderReplayExecutor`** — an in-process stand-in for a process pool
  that *replays shard completions in adversarial orders*.  Futures are lazy:
  nothing runs at ``submit``; when the backend blocks on a future's
  ``result()``, the executor runs the still-pending tasks in the configured
  order (LIFO by default, an explicit permutation, or a seeded shuffle) until
  that future is done.  The recorded ``completion_order`` proves tasks really
  completed out of submission order, making shard-order merge bugs
  deterministic instead of once-in-a-blue-moon scheduler accidents.

* **Fault injection** — ``failures={submission_index: exception}`` makes the
  replay executor complete chosen tasks with an exception instead of a
  result, exercising the "a shard died mid-stream" path without real
  processes (the real-process path is covered via the backend's
  ``inject_shard_fault`` hook).
"""

from __future__ import annotations

import glob
import os
from concurrent.futures import Future

import numpy as np

from repro.datasets import VectorDataset, make_clustered_vectors, make_sparse_corpus

__all__ = [
    "seeded_clustered",
    "seeded_corpus",
    "sparse_random_dataset",
    "append_split",
    "own_shm_entries",
    "ShardOrderReplayExecutor",
    "replay_factory",
]


def own_shm_entries() -> list[str]:
    """Shared-memory segments this process currently owns, by name.

    The leak oracle for the shared-memory transport tests: on Linux it lists
    ``/dev/shm`` entries carrying this process's segment prefix (so a leak is
    visible to the OS, not just to our bookkeeping); elsewhere it falls back
    to the transport module's own registry.
    """
    from repro.similarity import shm

    if os.path.isdir("/dev/shm"):
        pattern = os.path.join("/dev/shm", shm.SEGMENT_PREFIX + "*")
        return sorted(os.path.basename(path) for path in glob.glob(pattern))
    return sorted(shm.active_segment_names())


# --------------------------------------------------------------------- #
# Seeded dataset factories
# --------------------------------------------------------------------- #

def seeded_clustered(seed: int, n_rows: int = 24, n_features: int = 8,
                     n_clusters: int = 3, **kwargs) -> VectorDataset:
    """A clustered dense dataset whose name carries its seed."""
    return make_clustered_vectors(n_rows, n_features, n_clusters,
                                  seed=int(seed), **kwargs)


def seeded_corpus(seed: int, n_docs: int = 60, vocabulary_size: int = 240,
                  **kwargs) -> VectorDataset:
    """A sparse topic corpus whose name carries its seed."""
    kwargs.setdefault("avg_doc_length", 14)
    kwargs.setdefault("n_topics", 4)
    return make_sparse_corpus(n_docs, vocabulary_size, seed=int(seed), **kwargs)


def sparse_random_dataset(seed: int, n_rows: int, n_features: int,
                          density: float, n_clusters: int = 0) -> VectorDataset:
    """A seed-named sparse dataset built directly in CSR form.

    One ``rng.choice`` index draw per row — cheap enough for 20k rows in
    well under a second.  With ``n_clusters > 0`` rows are biased toward
    per-cluster feature bands so realistic numbers of pairs clear
    interesting thresholds even at 20k rows; with ``n_clusters = 0``
    features are uniform.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    lengths = np.maximum(1, rng.binomial(n_features, density, size=n_rows))
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.empty(indptr[-1], dtype=np.int64)
    if n_clusters > 0:
        band = max(1, n_features // n_clusters)
        clusters = rng.integers(0, n_clusters, size=n_rows)
    for i in range(n_rows):
        if n_clusters > 0 and rng.random() < 0.8:
            start = int(clusters[i]) * band
            pool = min(band, n_features - start)
            chosen = start + rng.choice(pool, size=min(lengths[i], pool),
                                        replace=False)
            if len(chosen) < lengths[i]:
                lengths[i] = len(chosen)
        else:
            chosen = rng.choice(n_features, size=lengths[i], replace=False)
        indices[indptr[i]:indptr[i] + len(chosen)] = np.sort(chosen)
    # Re-pack in case cluster bands shortened any row.
    packed = np.concatenate([[0], np.cumsum(lengths)])
    indices = np.concatenate(
        [indices[indptr[i]:indptr[i] + lengths[i]] for i in range(n_rows)])
    data = rng.random(packed[-1]) + 0.1
    return VectorDataset(packed, indices, data, n_features,
                         name=f"sparse-random[seed={int(seed)},rows={n_rows}]")


def append_split(dataset: VectorDataset, k: int) -> tuple[VectorDataset, VectorDataset]:
    """Split *dataset* into a parent and an appended child for delta tests.

    Returns ``(parent, child)`` where *parent* holds all but the last *k*
    rows and *child* is ``parent.append_rows(<last k rows>)`` — so *child*
    is **content-identical** to *dataset* (same fingerprint, so any failure
    replays from the factory seed embedded in the dataset name) but carries
    the ``parent_delta`` provenance the incremental-ingest path consumes.
    """
    n = dataset.n_rows
    if not 0 < k < n:
        raise ValueError(f"k must be in (0, {n}) to split {n} rows")
    parent = dataset.subset(range(n - k), name=f"{dataset.name}[:-{k}]")
    tail = dataset.subset(range(n - k, n), name=f"{dataset.name}[-{k}:]")
    child = parent.append_rows(tail, name=dataset.name)
    assert child.fingerprint() == dataset.fingerprint(), \
        "append_split must reproduce the dataset content exactly"
    return parent, child


# --------------------------------------------------------------------- #
# Adversarial shard-order replay executor
# --------------------------------------------------------------------- #

class _LazyFuture(Future):
    """A future that drives its executor's replay loop when waited on."""

    def __init__(self, executor: "ShardOrderReplayExecutor", index: int) -> None:
        super().__init__()
        self._replay_executor = executor
        self._replay_index = index

    def result(self, timeout=None):
        self._replay_executor._run_until(self._replay_index)
        return super().result(timeout)

    def exception(self, timeout=None):
        self._replay_executor._run_until(self._replay_index)
        return super().exception(timeout)


class ShardOrderReplayExecutor:
    """Deterministic executor replaying task completions adversarially.

    Parameters
    ----------
    order:
        ``"lifo"`` (default — the most adversarial simple order: the *last*
        submitted pending task completes first), ``"fifo"``, an explicit
        sequence of submission indices (tasks listed earlier complete
        earlier; unlisted tasks fall back to FIFO), or ``("random", seed)``
        for a seeded shuffle.
    failures:
        Mapping ``{submission_index: exception}``; those tasks complete with
        the exception instead of running.

    Attributes
    ----------
    completion_order:
        Submission indices in the order tasks actually completed — assert on
        this to prove the replay really was out of order.
    """

    def __init__(self, order="lifo", failures: dict | None = None) -> None:
        self._tasks: list[tuple[_LazyFuture, object, tuple, dict]] = []
        self.completion_order: list[int] = []
        self.failures = dict(failures or {})
        self._rng = None
        if isinstance(order, tuple) and len(order) == 2 and order[0] == "random":
            self._rng = np.random.default_rng(order[1])
            self._order = "random"
        else:
            self._order = order

    @property
    def submitted(self) -> int:
        return len(self._tasks)

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future = _LazyFuture(self, len(self._tasks))
        self._tasks.append((future, fn, args, kwargs))
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        if cancel_futures:
            for future, *_ in self._tasks:
                future.cancel()

    # -- replay machinery ---------------------------------------------- #
    def _pending(self) -> list[int]:
        return [i for i, (future, *_rest) in enumerate(self._tasks)
                if not future.done()]

    def _pick(self, pending: list[int]) -> int:
        if self._order == "lifo":
            return pending[-1]
        if self._order == "fifo":
            return pending[0]
        if self._order == "random":
            return int(self._rng.choice(pending))
        for index in self._order:
            if index in pending:
                return index
        return pending[0]

    def _run_one(self, index: int) -> None:
        future, fn, args, kwargs = self._tasks[index]
        if not future.set_running_or_notify_cancel():
            return  # cancelled counts as done; nothing to run
        if index in self.failures:
            future.set_exception(self.failures[index])
        else:
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed via future
                future.set_exception(exc)
        self.completion_order.append(index)

    def _run_until(self, index: int) -> None:
        while not self._tasks[index][0].done():
            self._run_one(self._pick(self._pending()))


def replay_factory(order="lifo", failures: dict | None = None):
    """An ``executor_factory`` for the sharded backend, recording instances.

    The factory ignores the worker count (everything runs in-process) and
    exposes every executor it built on ``factory.created`` so tests can
    assert on the recorded ``completion_order`` after the search returns.
    """
    created: list[ShardOrderReplayExecutor] = []

    def factory(n_workers: int) -> ShardOrderReplayExecutor:
        executor = ShardOrderReplayExecutor(order=order, failures=failures)
        created.append(executor)
        return executor

    factory.created = created
    return factory
