"""Tests for similarity measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import VectorDataset
from repro.similarity import (
    cosine_similarity,
    dot_similarity,
    get_measure,
    jaccard_similarity,
    pairwise_similarity_matrix,
)


def _row(mapping):
    ds = VectorDataset.from_rows([mapping], n_features=50)
    return ds.row(0)


def test_cosine_identical_vectors():
    row = _row({0: 1.0, 1: 2.0})
    assert cosine_similarity(row, row) == pytest.approx(1.0)


def test_cosine_orthogonal_vectors():
    a = _row({0: 1.0})
    b = _row({1: 1.0})
    assert cosine_similarity(a, b) == pytest.approx(0.0)


def test_cosine_known_value():
    a = _row({0: 1.0, 1: 1.0})
    b = _row({0: 1.0})
    assert cosine_similarity(a, b) == pytest.approx(1.0 / np.sqrt(2.0))


def test_cosine_zero_vector():
    assert cosine_similarity(_row({}), _row({0: 1.0})) == 0.0


def test_jaccard_values():
    a = _row({0: 1.0, 1: 1.0, 2: 1.0})
    b = _row({1: 5.0, 2: 5.0, 3: 5.0})
    assert jaccard_similarity(a, b) == pytest.approx(2.0 / 4.0)
    assert jaccard_similarity(a, a) == pytest.approx(1.0)
    assert jaccard_similarity(_row({}), _row({})) == 0.0


def test_dot_similarity():
    a = _row({0: 2.0, 3: 1.0})
    b = _row({0: 3.0, 2: 1.0})
    assert dot_similarity(a, b) == pytest.approx(6.0)


def test_get_measure_lookup():
    assert get_measure("cosine") is cosine_similarity
    with pytest.raises(KeyError):
        get_measure("euclidean-ish")


def test_pairwise_matrix_matches_pairwise_calls():
    rng = np.random.default_rng(1)
    ds = VectorDataset.from_dense(np.abs(rng.normal(size=(12, 6))))
    matrix = pairwise_similarity_matrix(ds, "cosine")
    for i in range(ds.n_rows):
        for j in range(ds.n_rows):
            expected = 1.0 if i == j else cosine_similarity(ds.row(i), ds.row(j))
            assert matrix[i, j] == pytest.approx(expected, abs=1e-9)


def test_pairwise_matrix_zero_row_cosine_diagonal():
    # A zero row used to get self-similarity 1.0 from fill_diagonal while
    # cosine_similarity(row, row) returns 0.0; the matrix now agrees with
    # the pairwise function everywhere, diagonal included.
    ds = VectorDataset.from_rows([{0: 1.0, 1: 2.0}, {}, {2: 3.0}],
                                 n_features=4)
    matrix = pairwise_similarity_matrix(ds, "cosine")
    for i in range(ds.n_rows):
        assert matrix[i, i] == pytest.approx(
            cosine_similarity(ds.row(i), ds.row(i)), abs=1e-9)
    assert matrix[1, 1] == 0.0
    assert matrix[0, 0] == 1.0
    assert np.all(matrix[1, :] == 0.0)


def test_pairwise_matrix_generic_diagonal_agrees_with_measure():
    # The generic (non-cosine) branch used to hard-code np.eye: empty rows
    # got jaccard self-similarity 1.0 and dot diagonals were 1.0 instead of
    # the squared norm.  The diagonal now comes from the measure itself.
    ds = VectorDataset.from_rows([{0: 1.0, 1: 1.0}, {}, {2: 2.0}],
                                 n_features=4)
    jaccard = pairwise_similarity_matrix(ds, "jaccard")
    assert jaccard[0, 0] == 1.0
    assert jaccard[1, 1] == jaccard_similarity(ds.row(1), ds.row(1)) == 0.0
    dot = pairwise_similarity_matrix(ds, "dot")
    assert dot[0, 0] == pytest.approx(2.0)
    assert dot[1, 1] == 0.0
    assert dot[2, 2] == pytest.approx(4.0)


def test_pairwise_matrix_jaccard_symmetric():
    ds = VectorDataset.from_rows([{0: 1, 1: 1}, {1: 1, 2: 1}, {3: 1}], n_features=5)
    matrix = pairwise_similarity_matrix(ds, "jaccard")
    assert np.allclose(matrix, matrix.T)
    assert matrix[0, 1] == pytest.approx(1.0 / 3.0)


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.integers(0, 20), st.floats(0.1, 5.0), min_size=1, max_size=8),
       st.dictionaries(st.integers(0, 20), st.floats(0.1, 5.0), min_size=1, max_size=8))
def test_property_cosine_symmetric_and_bounded(a, b):
    ra, rb = _row(a), _row(b)
    sab = cosine_similarity(ra, rb)
    sba = cosine_similarity(rb, ra)
    assert sab == pytest.approx(sba)
    assert -1.0 - 1e-9 <= sab <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 25), min_size=1, max_size=10),
       st.sets(st.integers(0, 25), min_size=1, max_size=10))
def test_property_jaccard_bounds_and_identity(a, b):
    ra = _row({i: 1.0 for i in a})
    rb = _row({i: 1.0 for i in b})
    s = jaccard_similarity(ra, rb)
    assert 0.0 <= s <= 1.0
    if a == b:
        assert s == pytest.approx(1.0)
