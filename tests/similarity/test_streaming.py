"""Streaming reducers pinned to their dense-matrix counterparts.

The streaming substrate must answer every question the dense ``n x n``
similarity matrix used to answer — histogram, rank selection, quantiles,
top-k, densifying series — with the matrix never materialised.  These tests
pin each reducer to the dense computation on random sparse datasets
(hypothesis, derandomised) and assert the peak-memory contract on a
5000-row dataset.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import VectorDataset, make_sparse_corpus
from repro.graphs import densifying_series, threshold_for_edge_count
from repro.similarity import (
    ApssEngine,
    iter_similarity_blocks,
    pairwise_similarity_matrix,
    similarity_histogram,
    similarity_quantile,
    streaming_similarity_histogram,
    thresholds_for_edge_counts,
    top_k_pairs,
)
from repro.similarity.backends.exact_blocked import ExactBlockedBackend
from repro.similarity.streaming import resolve_block_rows

MEASURES = ["cosine", "jaccard", "dot"]


def _random_dataset(seed: int, n_rows: int, n_features: int,
                    density: float) -> VectorDataset:
    rng = np.random.default_rng(seed)
    dense = rng.random((n_rows, n_features))
    dense[rng.random((n_rows, n_features)) > density] = 0.0
    return VectorDataset.from_dense(dense, name=f"random-{seed}")


def _upper(dataset: VectorDataset, measure: str) -> np.ndarray:
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    return sims[np.triu_indices(dataset.n_rows, k=1)]


def _streamed_upper(dataset: VectorDataset, measure: str,
                    block_rows: int) -> np.ndarray:
    chunks = []
    for rows, slab in iter_similarity_blocks(dataset, measure,
                                             block_rows=block_rows):
        row_ids = np.arange(rows.start, rows.stop)
        keep = np.arange(slab.shape[1])[None, :] > row_ids[:, None]
        chunks.append(slab[keep])
    return np.concatenate(chunks)


# --------------------------------------------------------------------- #
# The slab generator itself
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("block_rows", [1, 3, 7, 64])
def test_blocks_partition_and_match_dense_matrix(measure, block_rows):
    dataset = _random_dataset(5, 23, 9, 0.6)
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    covered = []
    rebuilt = np.zeros_like(sims)
    for rows, slab in iter_similarity_blocks(dataset, measure,
                                             block_rows=block_rows):
        assert slab.shape == (len(rows), dataset.n_rows)
        covered.extend(rows)
        rebuilt[rows.start:rows.stop] = slab
    assert covered == list(range(dataset.n_rows))
    off_diagonal = ~np.eye(dataset.n_rows, dtype=bool)
    assert np.allclose(rebuilt[off_diagonal], sims[off_diagonal], atol=1e-9)


def test_blocks_reject_unknown_measure():
    with pytest.raises(ValueError, match="unsupported streaming measure"):
        list(iter_similarity_blocks(_random_dataset(0, 4, 3, 1.0), "hamming"))


def test_engine_exposes_block_iterator_with_backend_defaults():
    dataset = _random_dataset(9, 18, 6, 0.8)
    engine = ApssEngine("exact-blocked", block_rows=5)
    blocks = list(engine.iter_similarity_blocks(dataset))
    assert [len(rows) for rows, _ in blocks] == [5, 5, 5, 3]


def test_resolve_block_rows_floors_at_one_row():
    """The budget is a hard cap: very wide datasets get single-row blocks
    instead of the old silent 16-row overshoot."""
    assert resolve_block_rows(1_000_000, memory_budget_mb=0.5) == 1
    assert ExactBlockedBackend(memory_budget_mb=0.5)._resolve_block_rows(
        1_000_000) == 1
    # And explicit block_rows still wins, capped at the dataset size.
    assert resolve_block_rows(10, block_rows=64) == 10


# --------------------------------------------------------------------- #
# Property: every streaming reducer matches its dense counterpart
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(3, 24),
       n_features=st.integers(2, 16),
       density=st.floats(0.2, 1.0),
       block_rows=st.integers(1, 30),
       measure=st.sampled_from(MEASURES))
def test_streaming_histogram_matches_dense(seed, n_rows, n_features, density,
                                           block_rows, measure):
    dataset = _random_dataset(seed, n_rows, n_features, density)
    upper = _upper(dataset, measure)
    counts, edges = streaming_similarity_histogram(dataset, bins=16,
                                                   measure=measure,
                                                   block_rows=block_rows)
    dense_counts, dense_edges = np.histogram(upper, bins=16)
    assert np.array_equal(counts, dense_counts)
    assert np.allclose(edges, dense_edges, atol=1e-9)
    assert counts.sum() == len(upper)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(3, 24),
       n_features=st.integers(2, 16),
       density=st.floats(0.2, 1.0),
       block_rows=st.integers(1, 30),
       measure=st.sampled_from(MEASURES))
def test_streaming_rank_selection_matches_dense(seed, n_rows, n_features,
                                                density, block_rows, measure):
    dataset = _random_dataset(seed, n_rows, n_features, density)
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    total = dataset.n_rows * (dataset.n_rows - 1) // 2
    targets = sorted({0, 1, total // 3, max(1, total - 1), total, total + 7})

    streamed = thresholds_for_edge_counts(dataset, targets, measure=measure,
                                          block_rows=block_rows)
    dense = [threshold_for_edge_count(sims, t) for t in targets]
    assert np.allclose(streamed, dense, atol=1e-9)

    # Against the streamed values themselves the selection is float-exact:
    # the k-th largest slab similarity, same semantics as np.partition.
    values = _streamed_upper(dataset, measure, block_rows)
    for target, threshold in zip(targets, streamed):
        if 0 < target < total:
            expected = np.partition(values, len(values) - target)
            assert threshold == float(expected[len(values) - target])
            assert int((values >= threshold).sum()) >= target


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(3, 20),
       density=st.floats(0.3, 1.0),
       q=st.floats(0.0, 1.0),
       measure=st.sampled_from(MEASURES))
def test_similarity_quantile_is_nearest_rank(seed, n_rows, density, q, measure):
    dataset = _random_dataset(seed, n_rows, 8, density)
    upper = np.sort(_upper(dataset, measure))
    total = len(upper)
    rank = min(total, max(1, int(np.ceil(q * total))))
    assert similarity_quantile(dataset, q, measure=measure) == pytest.approx(
        float(upper[rank - 1]), abs=1e-9)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(3, 20),
       density=st.floats(0.3, 1.0),
       k=st.integers(1, 40),
       block_rows=st.integers(1, 25),
       measure=st.sampled_from(MEASURES))
def test_top_k_pairs_matches_dense_ordering(seed, n_rows, density, k,
                                            block_rows, measure):
    dataset = _random_dataset(seed, n_rows, 8, density)
    n = dataset.n_rows
    upper_i, upper_j = np.triu_indices(n, k=1)
    values = _streamed_upper(dataset, measure, block_rows)
    order = np.lexsort((upper_j, upper_i, -values))
    expected = [(int(upper_i[o]), int(upper_j[o]), float(values[o]))
                for o in order[:k]]

    pairs = top_k_pairs(dataset, k, measure=measure, block_rows=block_rows)
    assert len(pairs) == min(k, len(values))
    assert [(p.first, p.second, p.similarity) for p in pairs] == expected
    dense_sorted = np.sort(_upper(dataset, measure))[::-1]
    got = np.array([p.similarity for p in pairs])
    assert np.allclose(got, dense_sorted[:len(pairs)], atol=1e-9)


def test_top_k_pairs_buffer_shrink_path(clustered_dataset):
    """120 rows / 7140 pairs overflows the 4096-entry buffer, exercising the
    shrink + cutoff pruning path against the brute-force answer."""
    k = 9
    pairs = top_k_pairs(clustered_dataset, k, block_rows=13)
    sims = pairwise_similarity_matrix(clustered_dataset)
    n = clustered_dataset.n_rows
    upper_i, upper_j = np.triu_indices(n, k=1)
    upper = sims[np.triu_indices(n, k=1)]
    order = np.lexsort((upper_j, upper_i, -upper))
    assert [(p.first, p.second) for p in pairs] == [
        (int(upper_i[o]), int(upper_j[o])) for o in order[:k]]


def test_top_k_pairs_edge_cases():
    dataset = _random_dataset(3, 6, 4, 0.9)
    assert top_k_pairs(dataset, 0) == []
    everything = top_k_pairs(dataset, 10_000)
    assert len(everything) == 6 * 5 // 2
    values = [p.similarity for p in everything]
    assert values == sorted(values, reverse=True)


# --------------------------------------------------------------------- #
# Densifying series: streaming path vs injected dense matrix
# --------------------------------------------------------------------- #

@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(4, 20),
       density=st.floats(0.3, 1.0),
       measure=st.sampled_from(["cosine", "jaccard"]))
def test_densifying_series_streaming_matches_dense(seed, n_rows, density,
                                                   measure):
    dataset = _random_dataset(seed, n_rows, 6, density)
    total = dataset.n_rows * (dataset.n_rows - 1) // 2
    counts = sorted({1, total // 4, total // 2, total})
    sims = pairwise_similarity_matrix(dataset, measure=measure)
    streamed = densifying_series(dataset, counts, measure=measure)
    dense = densifying_series(dataset, counts, measure=measure,
                              similarities=sims)
    assert len(streamed) == len(dense)
    previous_edges = None
    for (t_stream, g_stream), (t_dense, g_dense) in zip(streamed, dense):
        assert t_stream == pytest.approx(t_dense, abs=1e-9)
        assert g_stream.n_edges == g_dense.n_edges
        if previous_edges is not None:
            assert g_stream.n_edges >= previous_edges
        previous_edges = g_stream.n_edges


def test_threshold_for_edge_count_accepts_dataset(clustered_dataset):
    sims = pairwise_similarity_matrix(clustered_dataset)
    for target in (10, 100, 400):
        streamed = threshold_for_edge_count(clustered_dataset, target)
        dense = threshold_for_edge_count(sims, target)
        assert streamed == pytest.approx(dense, abs=1e-9)


def test_selection_dot_measure_with_trailing_empty_row():
    # A trailing empty row used to crash the dot-measure bound computation
    # (np.add.reduceat rejected the out-of-range start index).
    ds = VectorDataset.from_rows([{0: 1.0, 1: 2.0}, {1: 1.0}, {}],
                                 n_features=3)
    sims = pairwise_similarity_matrix(ds, measure="dot")
    streamed = thresholds_for_edge_counts(ds, [1, 2, 3], measure="dot")
    dense = [threshold_for_edge_count(sims, t) for t in (1, 2, 3)]
    assert np.allclose(streamed, dense, atol=1e-9)


def test_selection_refinement_when_one_bucket_holds_everything(monkeypatch):
    """When more distinct values crowd into one bucket than the tally cap,
    the selection must refine sub-buckets instead of growing unboundedly."""
    import repro.similarity.streaming as streaming

    monkeypatch.setattr(streaming, "_MAX_TALLY_DISTINCT", 7)
    dataset = _random_dataset(17, 16, 6, 0.9)
    sims = pairwise_similarity_matrix(dataset)
    total = 16 * 15 // 2
    targets = [1, total // 2, total - 1]
    streamed = thresholds_for_edge_counts(dataset, targets)
    dense = [threshold_for_edge_count(sims, t) for t in targets]
    assert np.allclose(streamed, dense, atol=1e-9)
    values = _streamed_upper(dataset, "cosine", 5)
    for target, threshold in zip(targets, streamed):
        expected = np.partition(values, len(values) - target)
        assert threshold == float(expected[len(values) - target])


def test_selection_on_near_duplicate_rows_stays_exact():
    """Near-duplicate data concentrates every similarity in one sliver of
    the a-priori bucket range — the degenerate case for bucket selection."""
    rng = np.random.default_rng(3)
    base = rng.random(12)
    dense_rows = base[None, :] + rng.normal(scale=1e-7, size=(200, 12))
    dataset = VectorDataset.from_dense(np.abs(dense_rows), name="near-dup")
    sims = pairwise_similarity_matrix(dataset)
    total = 200 * 199 // 2
    targets = [10, total // 2, total - 10]
    streamed = thresholds_for_edge_counts(dataset, targets)
    dense = [threshold_for_edge_count(sims, t) for t in targets]
    assert np.allclose(streamed, dense, atol=1e-9)


def test_selection_rejects_degenerate_inputs():
    single = _random_dataset(1, 1, 3, 1.0)
    with pytest.raises(ValueError, match="at least two rows"):
        thresholds_for_edge_counts(single, [1])
    dataset = _random_dataset(2, 5, 3, 1.0)
    assert thresholds_for_edge_counts(dataset, []) == []
    with pytest.raises(ValueError, match=r"q must be in \[0, 1\]"):
        similarity_quantile(dataset, 1.5)


# --------------------------------------------------------------------- #
# The memory contract: 5000 rows, no n x n matrix anywhere
# --------------------------------------------------------------------- #

def test_streaming_reducers_respect_memory_budget_on_5000_rows():
    """Histogram + quantile/threshold selection over 12.5M pairs must stay
    within the configured block budget — the dense matrix would be ~190 MB."""
    dataset = make_sparse_corpus(5000, 2000, avg_doc_length=8, n_topics=10,
                                 seed=7, name="budget-5000")
    budget_mb = 8.0
    tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        counts, edges = similarity_histogram(dataset, bins=32,
                                             memory_budget_mb=budget_mb)
        thresholds = thresholds_for_edge_counts(dataset, [5000, 40000],
                                                memory_budget_mb=budget_mb)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    total_pairs = 5000 * 4999 // 2
    assert counts.sum() == total_pairs
    assert thresholds[0] > thresholds[1] > 0.0
    peak_delta = peak - baseline
    budget_bytes = budget_mb * 1024 * 1024
    dense_bytes = 5000 * 5000 * 8
    assert peak_delta <= budget_bytes, (
        f"peak {peak_delta / 2**20:.1f} MB exceeds the {budget_mb} MB budget")
    assert peak_delta < dense_bytes / 10
