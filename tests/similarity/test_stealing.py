"""Tests for work-stealing shard execution.

Three layers, mirroring how stealing can fail:

* **The queue** — ``ShardQueue``'s ``O_CREAT | O_EXCL`` claim files must hand
  each shard to exactly one claimant under any interleaving, and the claim
  policy (own stripe first, then LIFO-steal from the most-loaded victim)
  must be deterministic given the set of already-claimed items.
* **Deterministic schedules** — via the harness's
  ``StealOrderReplayExecutor``, entire claim interleavings are forced
  (FIFO/LIFO/seeded-random/explicit turn scripts), stragglers simulated in
  virtual time, and claim-time faults injected — with bit-identical parity
  against the single-process sweep required throughout.
* **Real processes** — the same contracts through an actual
  ``ProcessPoolExecutor``: steal/bound/static parity, the claims audit in
  ``details``, fault injection crossing the pickle boundary, the delta
  (ingest) path, the ``REPRO_APSS_STRAGGLER`` slowdown hook, and the
  ``/dev/shm`` leak oracle extended over claim directories.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from harness import (append_split, own_shm_entries, seeded_corpus,
                     steal_replay_factory)
from repro.similarity import (ApssEngine, HistogramReducer, ShardExecutionError,
                              ShardQueue, ShardQueueClient, TopKReducer,
                              shard_owner)
from repro.similarity.backends.sharded import (InjectedShardFault,
                                               reset_shared_pools,
                                               run_delta_shards)

ENGINE = ApssEngine()


@pytest.fixture(scope="module")
def dataset():
    return seeded_corpus(31, n_docs=60)


@pytest.fixture(scope="module")
def reference(dataset):
    return ENGINE.search(dataset, 0.25, "cosine", backend="exact-blocked")


def pair_tuples(result):
    return [p.as_tuple() for p in result.pairs]


# --------------------------------------------------------------------- #
# The queue itself
# --------------------------------------------------------------------- #

def test_each_item_claimed_exactly_once_under_concurrency():
    queue = ShardQueue(24, 4)
    try:
        claimed: dict[int, list[int]] = {slot: [] for slot in range(4)}

        def worker(slot: int) -> None:
            client = ShardQueueClient(queue.descriptor(), slot)
            for item in client:
                claimed[slot].append(item)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        everything = [item for items in claimed.values() for item in items]
        assert sorted(everything) == list(range(24))
        assert len(everything) == len(set(everything))
        # The audit views agree with what the clients saw.
        assert queue.claims() == {slot: len(claimed[slot]) for slot in range(4)}
        assert queue.unclaimed() == []
        for item, slot in queue.claimed_by().items():
            assert item in claimed[slot]
    finally:
        queue.close()


def test_single_client_claims_own_stripe_then_steals_lifo():
    # 7 items over 3 slots; slot 0 owns {0, 3, 6}.  Alone, it must drain its
    # own stripe ascending, then steal from the most-loaded victim (ties to
    # the lowest slot), always taking the victim's LAST unclaimed item.
    queue = ShardQueue(7, 3)
    try:
        client = ShardQueueClient(queue.descriptor(), 0)
        assert list(client) == [0, 3, 6, 4, 5, 1, 2]
    finally:
        queue.close()


def test_bound_client_executes_exactly_its_stripe():
    queue = ShardQueue(10, 3)
    try:
        stripe = [item for item in range(10) if shard_owner(item, 3) == 1]
        client = ShardQueueClient(queue.descriptor(), 1, steal=False)
        assert list(client) == stripe
        # Everything else is still up for grabs.
        assert queue.unclaimed() == [item for item in range(10)
                                     if item not in stripe]
    finally:
        queue.close()


def test_claims_audit_includes_zero_claim_workers():
    queue = ShardQueue(4, 8)
    try:
        list(ShardQueueClient(queue.descriptor(), 2))
        counts = queue.claims()
        assert set(counts) == set(range(8))
        assert counts[2] == 4
        assert sum(counts.values()) == 4
    finally:
        queue.close()


def test_closed_queue_reads_as_drained_not_as_an_error():
    queue = ShardQueue(6, 2)
    client = ShardQueueClient(queue.descriptor(), 0)
    assert client.claim() == 0
    queue.close()
    assert not os.path.exists(queue.path)
    # A client racing the close sees the queue as drained.
    assert client.claim() is None
    queue.close()  # idempotent


def test_queue_directory_is_visible_to_the_shm_leak_oracle():
    before = own_shm_entries()
    queue = ShardQueue(3, 2)
    during = own_shm_entries()
    queue.close()
    if os.path.isdir("/dev/shm"):
        # The claim dir lives under /dev/shm with the segment prefix, so a
        # leaked queue shows up in exactly the oracle every shm test runs.
        assert os.path.basename(queue.path) in during
    assert own_shm_entries() == before


def test_descriptor_round_trips_through_pickle():
    queue = ShardQueue(5, 2)
    try:
        descriptor = pickle.loads(pickle.dumps(queue.descriptor()))
        assert descriptor == queue.descriptor()
        assert ShardQueueClient(descriptor, 1).claim() == 1
    finally:
        queue.close()


def test_queue_and_client_validate_arguments():
    with pytest.raises(ValueError, match="n_items"):
        ShardQueue(-1, 2)
    with pytest.raises(ValueError, match="n_slots"):
        ShardQueue(4, 0)
    queue = ShardQueue(4, 2)
    try:
        with pytest.raises(ValueError, match="worker_slot"):
            ShardQueueClient(queue.descriptor(), 2)
    finally:
        queue.close()


# --------------------------------------------------------------------- #
# Deterministic claim schedules (StealOrderReplayExecutor)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("order", ["fifo", "lifo", ("random", 7),
                                   ("random", 23), [1, 0, 1, 1, 0, 0]])
def test_adversarial_claim_orders_preserve_parity(dataset, reference, order):
    factory = steal_replay_factory(order=order)
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=5,
                           steal=True, executor_factory=factory)
    executor = factory.created[0]
    total = sum(len(items) for items in executor.claims.values())
    assert total == len(executor.claim_order) == result.details["n_shards"]
    # Exactly-once, whatever the interleaving.
    everything = [item for _, item in executor.claim_order]
    assert sorted(everything) == list(range(total))
    # ...and the merged pairs are bit-identical to the single-process sweep.
    assert pair_tuples(result) == pair_tuples(reference)


def test_explicit_turn_script_forces_the_claim_interleaving(dataset):
    script = [1, 0, 0, 1, 0, 1]
    factory = steal_replay_factory(order=script)
    ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                  n_workers=2, shards_per_worker=3, block_rows=5,
                  steal=True, executor_factory=factory)
    executor = factory.created[0]
    assert [slot for slot, _ in executor.claim_order] == script


def test_steal_matches_the_static_plan_bit_for_bit(dataset):
    stolen = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=5,
                           steal=True,
                           executor_factory=steal_replay_factory("lifo"))
    static = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=5,
                           steal=False)
    assert pair_tuples(stolen) == pair_tuples(static)


def test_virtual_straggler_redistributes_claims(dataset, reference):
    # Worker 0 is 10x slower in the executor's virtual clock: by the time it
    # finishes a shard, worker 1 has claimed several — so the straggler must
    # end the search with strictly fewer claims, with parity intact.
    factory = steal_replay_factory(delays={0: 10.0})
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=5,
                           steal=True, executor_factory=factory)
    executor = factory.created[0]
    assert len(executor.claims.get(0, [])) < len(executor.claims.get(1, []))
    assert pair_tuples(result) == pair_tuples(reference)


def test_claim_time_failure_surfaces_with_shard_and_cause(dataset):
    marker = RuntimeError("disk fell off")
    factory = steal_replay_factory(order="fifo", failures={2: marker})
    with pytest.raises(ShardExecutionError) as excinfo:
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, shards_per_worker=3, block_rows=5,
                      steal=True, executor_factory=factory)
    assert excinfo.value.shard_id == 2
    assert isinstance(excinfo.value.__cause__, RuntimeError)
    assert "disk fell off" in str(excinfo.value)


def test_failure_in_a_stolen_shard_still_names_the_shard(dataset):
    # Force worker 1 to do all the claiming (fifo would pick 0; an explicit
    # all-ones script hands every turn to slot 1), then fail a shard slot 1
    # does NOT own — the error must name the shard, not the thief.
    stolen_shard = 0
    assert shard_owner(stolen_shard, 2) == 0
    factory = steal_replay_factory(order=[1] * 12,
                                   failures={stolen_shard: OSError("yanked")})
    with pytest.raises(ShardExecutionError) as excinfo:
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, shards_per_worker=3, block_rows=5,
                      steal=True, executor_factory=factory)
    assert excinfo.value.shard_id == stolen_shard
    assert isinstance(excinfo.value.__cause__, OSError)


# --------------------------------------------------------------------- #
# Real processes
# --------------------------------------------------------------------- #

def test_steal_parity_and_claims_audit_over_real_processes(dataset, reference):
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=8,
                           steal=True)
    assert pair_tuples(result) == pair_tuples(reference)
    assert result.details["steal"] == "steal"
    claims = result.details["claims"]
    assert set(claims) == {0, 1}
    assert sum(claims.values()) == result.details["n_shards"]


def test_bound_mode_claims_exactly_the_stripes(dataset, reference):
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=8,
                           steal="bound")
    assert pair_tuples(result) == pair_tuples(reference)
    assert result.details["steal"] == "bound"
    n_shards = result.details["n_shards"]
    stripes = {slot: len([s for s in range(n_shards)
                          if shard_owner(s, 2) == slot]) for slot in (0, 1)}
    assert result.details["claims"] == stripes


def test_static_fanout_reports_no_claims(dataset, reference):
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, block_rows=8, steal=False)
    assert pair_tuples(result) == pair_tuples(reference)
    assert result.details["steal"] == "static"
    assert result.details["claims"] is None


def test_injected_fault_crosses_the_steal_process_boundary(dataset):
    with pytest.raises(ShardExecutionError) as excinfo:
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, shards_per_worker=3, block_rows=8,
                      steal=True, inject_shard_fault=3)
    assert excinfo.value.shard_id == 3
    assert isinstance(excinfo.value.__cause__, InjectedShardFault)


def test_steal_search_leaks_no_shm_segments(dataset):
    before = own_shm_entries()
    ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                  n_workers=2, shards_per_worker=3, block_rows=8, steal=True)
    assert own_shm_entries() == before


def test_delta_steal_modes_agree_pairs_and_folded_reducers(dataset):
    parent, child = append_split(dataset, 9)
    delta = child.parent_delta
    specs = {"histogram": [0.0, 0.25, 0.5, 0.75, 1.0], "top_k": 7}

    def run(**kwargs):
        return run_delta_shards(child, delta, 0.25, "cosine",
                                reducer_specs=specs, n_workers=2,
                                shards_per_worker=3, **kwargs)

    def fold(states):
        histogram = HistogramReducer(specs["histogram"])
        for state in states["histogram"]:
            histogram.merge(HistogramReducer.from_state(state))
        top = TopKReducer(specs["top_k"])
        for state in states["top_k"]:
            top.merge(TopKReducer.from_state(state))
        return (histogram.counts.tolist(),
                [p.as_tuple() for p in top.pairs()])

    results = {mode: run(steal=mode) for mode in (None, True, "bound", False)}
    reference_pairs = [p.as_tuple() for p in results[None][0]]
    reference_fold = fold(results[None][1])
    assert reference_pairs, "delta split must produce pairs to compare"
    for mode, (pairs, states) in results.items():
        assert [p.as_tuple() for p in pairs] == reference_pairs, mode
        # Shard counts (hence state-list lengths) legitimately differ per
        # mode; the *folded* reducer values may not.
        assert fold(states) == reference_fold, mode


def test_straggler_env_slowdown_keeps_parity(dataset, reference, monkeypatch):
    from repro.similarity.backends import sharded
    monkeypatch.setenv(sharded.STRAGGLER_ENV_VAR, "3")
    reset_shared_pools()
    try:
        result = ENGINE.search(dataset, 0.25, "cosine",
                               backend="sharded-blocked", n_workers=2,
                               shards_per_worker=3, block_rows=8, steal=True)
        assert pair_tuples(result) == pair_tuples(reference)
        assert sum(result.details["claims"].values()) == \
            result.details["n_shards"]
    finally:
        monkeypatch.delenv(sharded.STRAGGLER_ENV_VAR)
        reset_shared_pools()


@pytest.mark.skipif(not hasattr(os, "sched_setaffinity"),
                    reason="needs sched_setaffinity")
def test_pinned_workers_keep_parity(dataset, reference):
    reset_shared_pools()
    try:
        result = ENGINE.search(dataset, 0.25, "cosine",
                               backend="sharded-blocked", n_workers=2,
                               shards_per_worker=3, block_rows=8,
                               steal=True, pin_workers=True)
        assert pair_tuples(result) == pair_tuples(reference)
    finally:
        reset_shared_pools()
