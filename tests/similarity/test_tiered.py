"""Two-tier serving: sketch answers now, exact refinement behind, one store.

Covers the :class:`~repro.similarity.tiered.TieredApssEngine` contract:

* a cold probe is answered from the sketch tier tagged with its ``1 − ε``
  recall bound, and after refinement the *same* probe transparently
  re-serves exact — kernel-free, audited via ``ApssEngine.search_calls``;
* the parked estimate under the exact key is served to sibling tiered
  engines but never to a plain exact search (exactness discipline);
* the refined store entry is byte-identical to one written by a direct
  exact sweep — the two paths converge on one canonical entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_clustered_vectors
from repro.similarity import (ApssEngine, CachedApssEngine, TieredAnswer,
                              TieredApssEngine)
from repro.store import SimilarityStore

SKETCH = {"n_hashes": 128, "seed": 0}


def _dataset(seed: int = 11, n_rows: int = 30):
    return make_clustered_vectors(n_rows, 8, 3, seed=seed)


def _tiered(tmp_path, name: str, refine: str = "background",
            **kwargs) -> TieredApssEngine:
    store = SimilarityStore(tmp_path / name)
    return TieredApssEngine(engine=ApssEngine(), store=store, refine=refine,
                            sketch_options=dict(SKETCH), **kwargs)


# --------------------------------------------------------------------- #
# Serving order and refinement
# --------------------------------------------------------------------- #

def test_probe_serves_sketch_then_exact_after_refinement(tmp_path):
    dataset = _dataset()
    with _tiered(tmp_path, "store") as eng:
        answer = eng.probe(dataset, 0.5)
        assert answer.tier == "sketch"
        assert not answer.exact
        assert answer.bound == pytest.approx(eng.recall_bound)
        assert 0.0 < answer.bound < 1.0
        assert answer.refinement is not None
        eng.wait()
        upgraded = eng.probe(dataset, 0.5)
    assert upgraded.tier == "exact"
    assert upgraded.bound == 1.0
    assert upgraded.exact
    reference = ApssEngine().search(dataset, 0.5, "cosine")
    assert upgraded.result.pair_set() == reference.pair_set()
    # The sketch answer honoured its recall contract on this dataset.
    sketch_recall = (len(answer.result.pair_set() & reference.pair_set())
                     / max(1, len(reference.pair_set())))
    assert sketch_recall >= answer.bound


def test_sync_refinement_upgrades_store_before_returning(tmp_path):
    dataset = _dataset()
    eng = _tiered(tmp_path, "store", refine="sync")
    answer = eng.probe(dataset, 0.5)
    assert answer.tier == "sketch"          # the probe still answers fast-path
    assert answer.refinement is None        # ... but nothing is left in flight
    key = eng._exact_key(dataset.fingerprint(), "cosine")
    landed = eng.store.load_result(key)
    assert landed is not None and landed.exact
    assert eng.refinements == 1


def test_refine_off_parks_estimate_and_schedules_nothing(tmp_path):
    dataset = _dataset()
    eng = _tiered(tmp_path, "store", refine="off")
    answer = eng.probe(dataset, 0.5)
    assert answer.tier == "sketch" and answer.refinement is None
    assert eng.refinements == 0
    key = eng._exact_key(dataset.fingerprint(), "cosine")
    parked = eng.store.load_result(key)
    assert parked is not None and not parked.exact
    assert parked.details["recall_bound"] == pytest.approx(eng.recall_bound)


def test_repeated_probe_reuses_pending_refinement(tmp_path):
    dataset = _dataset()
    with _tiered(tmp_path, "store") as eng:
        first = eng.probe(dataset, 0.6)
        second = eng.probe(dataset, 0.4)
        eng.wait()
    # One key, one in-flight refinement: either shared, or the first had
    # already completed before the second probe asked.
    assert eng.refinements <= 2
    assert first.refinement is not None


def test_wait_surfaces_refinement_failure(tmp_path):
    dataset = _dataset()
    eng = _tiered(tmp_path, "store", exact_backend="exact-blocked",
                  exact_options={"block_rows": -5})
    eng.probe(dataset, 0.5)
    with pytest.raises(Exception):
        eng.wait()
    eng.close()


# --------------------------------------------------------------------- #
# Kernel audit: both tiers share one engine
# --------------------------------------------------------------------- #

def test_search_calls_audit_across_tiers(tmp_path):
    dataset = _dataset()
    eng = _tiered(tmp_path, "store", refine="sync")
    assert eng.cache.engine is eng.sketch_cache.engine
    eng.probe(dataset, 0.5)
    # Exactly two kernel invocations: one sketch-tier bayeslsh search, one
    # exact refinement sweep.
    assert eng.cache.engine.search_calls == 2
    eng.probe(dataset, 0.5)
    eng.probe(dataset, 0.7)
    assert eng.cache.engine.search_calls == 2   # serves are kernel-free
    assert eng.exact_answers == 2 and eng.sketch_answers == 1


def test_fresh_process_serves_exact_kernel_free(tmp_path):
    dataset = _dataset()
    with _tiered(tmp_path, "store", refine="sync") as eng:
        eng.probe(dataset, 0.5)
    # A "new process": fresh engine, fresh caches, same store directory.
    revived = TieredApssEngine(engine=ApssEngine(),
                               store=SimilarityStore(tmp_path / "store"),
                               sketch_options=dict(SKETCH))
    answer = revived.probe(dataset, 0.5)
    assert answer.tier == "exact"
    assert revived.cache.engine.search_calls == 0


def test_cross_instance_parked_estimate_serving(tmp_path):
    dataset = _dataset()
    parker = _tiered(tmp_path, "store", refine="off")
    parker.probe(dataset, 0.5)
    sibling = TieredApssEngine(engine=ApssEngine(),
                               store=SimilarityStore(tmp_path / "store"),
                               refine="off", sketch_options=dict(SKETCH))
    answer = sibling.probe(dataset, 0.5)
    assert answer.tier == "sketch"
    assert answer.bound == pytest.approx(sibling.recall_bound)
    # Served straight from the parked entry: zero kernel invocations.
    assert sibling.cache.engine.search_calls == 0


# --------------------------------------------------------------------- #
# Exactness discipline at the store boundary
# --------------------------------------------------------------------- #

def test_parked_estimate_invisible_to_plain_exact_search(tmp_path):
    dataset = _dataset()
    eng = _tiered(tmp_path, "store", refine="off")
    eng.probe(dataset, 0.5)
    plain = CachedApssEngine(engine=ApssEngine(),
                             store=SimilarityStore(tmp_path / "store"))
    # peek: the parked estimate must not satisfy an exact-backend lookup...
    assert plain.peek(dataset, 0.5) is None
    assert plain.peek(dataset, 0.5, accept_approximate=True) is not None
    # ...and search must run the kernel rather than serve the estimate.
    result = plain.search(dataset, 0.5)
    assert result.exact
    assert plain.engine.search_calls == 1
    # That exact landing upgraded the shared entry in place.
    key = eng._exact_key(dataset.fingerprint(), "cosine")
    assert eng.store.load_result(key).exact


def test_refined_entry_bit_identical_to_direct_exact_sweep(tmp_path):
    dataset = _dataset()
    with _tiered(tmp_path, "tiered", refine="sync") as eng:
        eng.probe(dataset, 0.5)
    direct = CachedApssEngine(engine=ApssEngine(),
                              store=SimilarityStore(tmp_path / "direct"))
    direct.search(dataset, 0.5)
    key = eng._exact_key(dataset.fingerprint(), "cosine")
    assert key == direct._key(dataset.fingerprint(), "cosine", None, {})
    tiered_bytes = eng.store._path("pairs", key).read_bytes()
    direct_bytes = direct.store._path("pairs", key).read_bytes()
    assert tiered_bytes == direct_bytes


# --------------------------------------------------------------------- #
# Answer shape and constructor contract
# --------------------------------------------------------------------- #

def test_tiered_answer_unpacks_as_result_tier_bound():
    eng = TieredApssEngine(engine=ApssEngine(), store=False, refine="off")
    dataset = _dataset(seed=3, n_rows=12)
    result, tier, bound = eng.probe(dataset, 0.5)
    assert tier == "sketch" and 0.0 < bound < 1.0
    assert not result.exact
    answer = eng.probe(dataset, 0.5)
    assert isinstance(answer, TieredAnswer)
    assert answer.exact == (answer.tier == "exact")


def test_storeless_tier_still_refines_in_memory(tmp_path):
    dataset = _dataset(seed=4, n_rows=16)
    eng = TieredApssEngine(engine=ApssEngine(), store=False, refine="sync")
    assert eng.store is None
    first = eng.probe(dataset, 0.5)
    assert first.tier == "sketch"
    second = eng.probe(dataset, 0.5)
    assert second.tier == "exact"           # memoised by the exact-tier cache


def test_constructor_rejects_bad_refine_mode():
    with pytest.raises(ValueError, match="refine must be one of"):
        TieredApssEngine(engine=ApssEngine(), store=False, refine="eventually")


def test_constructor_rejects_cache_and_parts():
    cache = CachedApssEngine(engine=ApssEngine(), store=False)
    with pytest.raises(ValueError, match="not both"):
        TieredApssEngine(cache, engine=ApssEngine())


def test_epsilon_follows_sketch_config(tmp_path):
    from repro.lsh.bayeslsh import BayesLSHConfig

    eng = TieredApssEngine(
        engine=ApssEngine(), store=False, refine="off",
        sketch_options={"config": BayesLSHConfig(epsilon=0.1)})
    assert eng.epsilon == pytest.approx(0.1)
    assert eng.recall_bound == pytest.approx(0.9)
    dataset = _dataset(seed=9, n_rows=14)
    answer = eng.probe(dataset, 0.5)
    assert answer.bound == pytest.approx(0.9)
