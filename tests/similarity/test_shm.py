"""Tests for the shared-memory slab transport (`repro.similarity.shm`).

Two contracts under test:

* **Transparency** — the transport is purely an execution choice: searches,
  streams and delta passes produce byte-identical results whether payloads
  travel through shared memory, through pickles (``use_shared_memory=False``)
  or through the automatic fallback when segment creation fails.

* **Reclamation** — no segment outlives its lifecycle: published datasets
  are LRU-capped, rings die with their stream (even when a block faults
  mid-stream), and pool evict/rebuild (``reset_shared_pools``) leaves
  ``/dev/shm`` with zero entries owned by this process.  The leak oracle is
  the OS view of ``/dev/shm`` (see ``harness.own_shm_entries``), not our own
  bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import own_shm_entries, replay_factory, seeded_corpus
from repro.similarity import ApssEngine, reset_shared_pools
from repro.similarity import shm
from repro.similarity.backends.sharded import (ShardExecutionError,
                                               iter_similarity_blocks_sharded)
from repro.similarity.streaming import iter_similarity_blocks

ENGINE = ApssEngine()


@pytest.fixture
def clean_transport():
    """A transport with no published segments before or after the test."""
    reset_shared_pools()
    assert own_shm_entries() == []
    yield
    reset_shared_pools()
    assert own_shm_entries() == [], "test leaked shared-memory segments"


@pytest.fixture(scope="module")
def dataset():
    return seeded_corpus(303, n_docs=60, vocabulary_size=220)


# --------------------------------------------------------------------- #
# Publish / attach round trip
# --------------------------------------------------------------------- #

def test_publish_attach_roundtrip_is_content_identical(clean_transport, dataset):
    descriptor = shm.publish_dataset(dataset)
    assert descriptor is not None
    assert descriptor.fingerprint == dataset.fingerprint()
    attached, segments = shm.attach_dataset(descriptor)
    assert attached.n_rows == dataset.n_rows
    assert attached.n_features == dataset.n_features
    assert np.array_equal(attached.indptr, dataset.indptr)
    assert np.array_equal(attached.indices, dataset.indices)
    assert np.array_equal(attached.data, dataset.data)
    assert attached.fingerprint() == dataset.fingerprint()
    del attached, segments


def test_publish_is_idempotent_per_fingerprint(clean_transport, dataset):
    first = shm.publish_dataset(dataset)
    before = own_shm_entries()
    again = shm.publish_dataset(dataset)
    assert again == first, "re-publishing must reuse the existing segments"
    assert own_shm_entries() == before


def test_published_datasets_are_lru_capped(clean_transport):
    datasets = [seeded_corpus(900 + i, n_docs=8, vocabulary_size=40)
                for i in range(shm.MAX_PUBLISHED_DATASETS + 2)]
    oldest = shm.publish_dataset(datasets[0])
    for extra in datasets[1:]:
        shm.publish_dataset(extra)
    fingerprints = shm.published_fingerprints()
    assert len(fingerprints) == shm.MAX_PUBLISHED_DATASETS
    assert datasets[0].fingerprint() not in fingerprints
    # The evicted dataset's segments are gone from the OS too.
    assert oldest.indptr.name not in own_shm_entries()
    # 3 segments per published dataset, nothing else.
    assert len(own_shm_entries()) == 3 * shm.MAX_PUBLISHED_DATASETS


def test_release_dataset_tolerates_unknown_fingerprints(clean_transport):
    shm.release_dataset("not-a-fingerprint")  # must not raise


def test_pinned_datasets_survive_lru_pressure_and_pool_evicts(clean_transport):
    """A dataset pinned by an active user must survive both LRU eviction by
    later publishes and the broken-pool cleanup (release_datasets); only
    the full release_all teardown overrides pins."""
    pinned = seeded_corpus(950, n_docs=8, vocabulary_size=40)
    fingerprint = pinned.fingerprint()
    shm.publish_dataset(pinned)
    shm.pin_dataset(fingerprint)
    try:
        for i in range(shm.MAX_PUBLISHED_DATASETS + 2):
            shm.publish_dataset(
                seeded_corpus(960 + i, n_docs=8, vocabulary_size=40))
        assert fingerprint in shm.published_fingerprints()
        shm.release_datasets()  # the broken-pool hook spares pinned datasets
        assert shm.published_fingerprints() == [fingerprint]
    finally:
        shm.unpin_dataset(fingerprint)
    shm.release_datasets()
    assert shm.published_fingerprints() == []


def test_mid_stream_pool_evict_does_not_kill_a_live_stream(clean_transport,
                                                           dataset):
    """Regression: a broken pool's cleanup (release_datasets) must not tear
    down a live stream's pinned dataset or its ring — the stream finishes
    and its slabs stay byte-identical to the plain generator's."""
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=7))
    stream = iter_similarity_blocks_sharded(dataset, "cosine", block_rows=7,
                                            n_workers=2)
    rows, slab = next(stream)
    got = [(rows, slab.copy())]  # borrowed views must be copied to retain
    shm.release_datasets()  # what _shared_pool runs when another pool breaks
    got.extend((r, b.copy()) for r, b in stream)
    assert [r for r, _ in got] == [r for r, _ in plain]
    for (_, expected), (_, actual) in zip(plain, got):
        assert np.array_equal(expected, actual)


def test_closed_ring_fails_loudly_not_with_zero_division(clean_transport):
    ring = shm.SlabRing(2, 64)
    ring.close()
    with pytest.raises(RuntimeError, match="ring is closed"):
        ring.slot_name(0)
    with pytest.raises(RuntimeError, match="ring is closed"):
        ring.read(0, (1, 1))


def test_slab_ring_roundtrip_and_slot_reuse(clean_transport):
    ring = shm.SlabRing(2, 4 * 5 * 8)
    try:
        first = np.arange(20, dtype=np.float64).reshape(4, 5)
        second = -first
        assert shm.write_slab(ring.slot_name(0), first) == (4, 5)
        assert np.array_equal(ring.read(0, (4, 5)), first)
        # Slot 0 and slot 2 alias (ring of 2): reuse after consumption.
        assert shm.write_slab(ring.slot_name(2), second) == (4, 5)
        assert np.array_equal(ring.read(2, (4, 5)), second)
    finally:
        ring.close()
    assert own_shm_entries() == []


# --------------------------------------------------------------------- #
# The transport is invisible in results
# --------------------------------------------------------------------- #

def test_search_parity_across_transports(clean_transport, dataset):
    reference = ENGINE.search(dataset, 0.25, "cosine", backend="exact-blocked")
    via_shm = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                            n_workers=2, block_rows=6)
    via_pickle = ENGINE.search(dataset, 0.25, "cosine",
                               backend="sharded-blocked", n_workers=2,
                               block_rows=6, use_shared_memory=False)
    assert via_shm.details["shared_memory"] is True
    assert via_pickle.details["shared_memory"] is False
    expected = [p.as_tuple() for p in reference.pairs]
    assert [p.as_tuple() for p in via_shm.pairs] == expected
    assert [p.as_tuple() for p in via_pickle.pairs] == expected


def test_streamed_slabs_through_the_ring_are_identical(clean_transport, dataset):
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=7))
    ringed = []
    for rows, slab in iter_similarity_blocks_sharded(
            dataset, "cosine", block_rows=7, n_workers=2):
        # The default stream hands out read-only borrowed ring views —
        # zero-copy, valid until the next iteration step, copy to retain.
        assert not slab.flags.writeable
        ringed.append((rows, slab.copy()))
    assert [r for r, _ in ringed] == [r for r, _ in plain]
    for (_, expected), (_, got) in zip(plain, ringed):
        assert np.array_equal(expected, got)
    # The ring itself is gone the moment the stream is exhausted; only the
    # published dataset segments remain (until pool evict / release).
    assert len(own_shm_entries()) == 3


def test_streamed_slabs_with_borrowing_disabled_are_owned_copies(
        clean_transport, dataset):
    """``borrow_slabs=False`` is the untrusted-consumer fallback: yielded
    slabs are owned, writable copies that stay valid after the stream."""
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=7))
    kept = list(iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=7, n_workers=2, borrow_slabs=False))
    assert all(slab.flags.writeable for _, slab in kept)
    assert [r for r, _ in kept] == [r for r, _ in plain]
    for (_, expected), (_, got) in zip(plain, kept):
        assert np.array_equal(expected, got)  # retained past stream end


def test_adversarial_completion_orders_through_shared_memory(
        clean_transport, dataset):
    """The replay harness drives the shm transport in-process: slabs land in
    ring slots out of submission order and must still stream in row order."""
    factory = replay_factory(order="lifo")
    ringed = [(r, b.copy()) for r, b in iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=7, n_workers=4,
        executor_factory=factory)]
    executor = factory.created[0]
    assert executor.completion_order != sorted(executor.completion_order)
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=7))
    for (_, expected), (_, got) in zip(plain, ringed):
        assert np.array_equal(expected, got)


def test_fallback_when_publishing_fails(clean_transport, dataset, monkeypatch):
    """A full /dev/shm (or unsupported platform) degrades to pickles, loudly
    nowhere and wrongly never."""
    monkeypatch.setattr(shm, "publish_dataset", lambda *a, **k: None)
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, block_rows=6)
    assert result.details["shared_memory"] is False
    reference = ENGINE.search(dataset, 0.25, "cosine", backend="exact-blocked")
    assert [p.as_tuple() for p in result.pairs] == \
        [p.as_tuple() for p in reference.pairs]
    assert own_shm_entries() == []


def test_ring_creation_failure_degrades_to_pickled_slabs(
        clean_transport, dataset, monkeypatch):
    def boom(*args, **kwargs):
        raise OSError("no space on /dev/shm")

    monkeypatch.setattr(shm, "SlabRing", boom)
    ringless = list(iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=7, n_workers=2))
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=7))
    for (_, expected), (_, got) in zip(plain, ringless):
        assert np.array_equal(expected, got)


# --------------------------------------------------------------------- #
# Borrow lifecycle: zero-copy views never alias an in-flight writer
# --------------------------------------------------------------------- #

def test_borrowed_slot_is_never_recycled_while_borrowed(clean_transport):
    ring = shm.SlabRing(2, 4 * 5 * 8)
    try:
        first = np.arange(20, dtype=np.float64).reshape(4, 5)
        shm.write_slab(ring.slot_name(0), first)
        view = ring.borrow(0, (4, 5))
        assert not view.flags.writeable
        assert np.array_equal(view, first)
        assert ring.is_borrowed(0) and ring.borrowed_slots() == [0]
        # Index 2 aliases slot 0 in a ring of 2: writers must be refused
        # until the borrow is returned, under either index.
        for index in (0, 2):
            with pytest.raises(RuntimeError, match="borrowed"):
                ring.slot_name(index)
        ring.slot_name(1)  # the other slot circulates freely
        ring.release(0)
        assert not ring.is_borrowed(0)
        shm.write_slab(ring.slot_name(2), -first)  # recycled after release
        assert np.array_equal(ring.read(2, (4, 5)), -first)
    finally:
        ring.close()
    assert own_shm_entries() == []


def test_borrowed_views_are_read_only(clean_transport):
    ring = shm.SlabRing(1, 6 * 8)
    try:
        shm.write_slab(ring.slot_name(0), np.zeros((2, 3)))
        view = ring.borrow(0, (2, 3))
        with pytest.raises(ValueError, match="read-only"):
            view[0, 0] = 1.0
    finally:
        ring.close()


def test_double_borrow_and_double_release_fail_loudly(clean_transport):
    ring = shm.SlabRing(2, 64)
    try:
        ring.borrow(0, (2, 2))
        with pytest.raises(RuntimeError, match="already borrowed"):
            ring.borrow(0, (2, 2))
        with pytest.raises(RuntimeError, match="already borrowed"):
            ring.borrow(2, (2, 2))  # same slot via an aliasing index
        ring.release(0)
        with pytest.raises(RuntimeError, match="not borrowed"):
            ring.release(0)
    finally:
        ring.close()


def test_borrow_and_release_refuse_a_closed_ring(clean_transport):
    ring = shm.SlabRing(1, 64)
    view = ring.borrow(0, (2, 2))
    ring.close()
    with pytest.raises(RuntimeError, match="ring is closed"):
        ring.borrow(0, (2, 2))
    with pytest.raises(RuntimeError, match="ring is closed"):
        ring.release(0)
    # The close dropped the outstanding borrow and unlinked the name...
    assert not ring.is_borrowed(0)
    assert own_shm_entries() == []
    # ...while a (contract-breaking) retained view degrades to stale reads,
    # never a crash: the guard keeps the mapping alive until the view dies.
    assert float(view.sum()) == view.sum()


def test_release_all_drains_borrows(clean_transport):
    ring = shm.SlabRing(2, 64)
    ring.borrow(1, (2, 2))
    assert ring.borrowed_slots() == [1]
    shm.release_all()
    assert ring.borrowed_slots() == []
    assert own_shm_entries() == []


def test_stream_yields_borrowed_views_and_releases_between_steps(
        clean_transport, dataset):
    stream = iter_similarity_blocks_sharded(dataset, "cosine", block_rows=7,
                                            n_workers=2)
    _, first_slab = next(stream)
    assert not first_slab.flags.writeable  # borrowed, not copied
    # By the next step the previous borrow has been released: every further
    # yield is again a fresh read-only view, and the stream drains cleanly.
    remaining = [(rows, slab) for rows, slab in stream]
    assert all(not slab.flags.writeable for _, slab in remaining)
    assert len(own_shm_entries()) == 3  # dataset segments only; ring gone


def test_consumer_crash_mid_stream_releases_the_borrow(clean_transport,
                                                       dataset):
    """A consumer that raises while holding a borrowed slab must not wedge
    the ring: generator cleanup releases the borrow and reclaims the ring."""
    with pytest.raises(RuntimeError, match="consumer crashed"):
        for _rows, slab in iter_similarity_blocks_sharded(
                dataset, "cosine", block_rows=7, n_workers=2):
            assert not slab.flags.writeable
            raise RuntimeError("consumer crashed")
    assert len(own_shm_entries()) == 3  # ring reclaimed, borrows drained


# --------------------------------------------------------------------- #
# Reclamation: faults, aborts and pool lifecycle leave /dev/shm clean
# --------------------------------------------------------------------- #

def test_pool_evict_reclaims_every_segment(clean_transport, dataset):
    """The acceptance check: after real multi-process work, resetting the
    shared pools leaves zero /dev/shm entries owned by this process."""
    ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                  n_workers=2, block_rows=6)
    assert len(own_shm_entries()) == 3  # the published dataset
    reset_shared_pools()
    assert own_shm_entries() == []
    # And the transport recovers transparently after the evict.
    again = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                          n_workers=2, block_rows=6)
    assert again.details["shared_memory"] is True


def test_mid_stream_fault_reclaims_the_ring(clean_transport, dataset):
    """A worker fault crossing a real process boundary must not leak the
    ring: the stream raises ShardExecutionError and closes its slots."""
    with pytest.raises(ShardExecutionError) as excinfo:
        for _ in iter_similarity_blocks_sharded(
                dataset, "cosine", block_rows=7, n_workers=2,
                inject_block_fault=3):
            pass
    assert excinfo.value.block == (21, 28)
    assert len(own_shm_entries()) == 3  # dataset segments only, ring gone


def test_search_fault_through_real_processes_leaves_no_ring(
        clean_transport, dataset):
    with pytest.raises(ShardExecutionError):
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, block_rows=6, inject_shard_fault=0)
    assert len(own_shm_entries()) == 3


def test_abandoned_stream_reclaims_the_ring(clean_transport, dataset):
    stream = iter_similarity_blocks_sharded(dataset, "cosine", block_rows=7,
                                            n_workers=2)
    next(stream)
    assert len(own_shm_entries()) > 3  # ring slots live while streaming
    stream.close()
    assert len(own_shm_entries()) == 3


def test_release_all_is_atexit_safe_when_idle(clean_transport):
    shm.release_all()  # nothing published: must be a clean no-op
    assert own_shm_entries() == []
