"""Cross-backend parity harness for the APSS engine.

Every registered backend must agree with the ``exact-loop`` reference:

* exact backends return the *identical* pair set, with similarities within
  1e-9;
* the approximate ``bayeslsh`` backend must retain (essentially) every pair
  comfortably above the threshold and nothing comfortably below it.

The roster is introspected from the backend registry: each backend
contributes every option set from its ``parity_variants()`` (the sharded
backend declares 1-, 2- and 4-worker variants), so a newly registered
backend — and each of its declared configuration seams — is parity-checked
automatically, with zero edits here.

The properties run under hypothesis over random dense and sparse datasets,
thresholds and measures; ``derandomize=True`` keeps the suite deterministic
in CI, and every generated dataset embeds its seed in its name so a failure
message alone is enough to rebuild the offending input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from harness import sparse_random_dataset
from repro.datasets import VectorDataset, make_clustered_vectors, make_sparse_corpus
from repro.similarity import (ApssEngine, available_backends,
                              get_backend_class, make_backend)
from repro.similarity.backends import ApssBackend

ENGINE = ApssEngine()


def _variant_params(exact: bool) -> list:
    """(backend, options) pytest params from registry introspection."""
    params = []
    for name in available_backends():
        cls = get_backend_class(name)
        if cls.exact != exact or name == "exact-loop":
            continue
        for options in cls.parity_variants():
            suffix = ",".join(f"{k}={v}" for k, v in sorted(options.items()))
            params.append(pytest.param(
                name, options, id=f"{name}[{suffix}]" if suffix else name))
    return params


EXACT_VARIANTS = _variant_params(exact=True)
APPROX_VARIANTS = _variant_params(exact=False)

#: Pair similarities this close to the threshold are allowed to land on
#: either side (the test nudges thresholds away from them instead).
BOUNDARY = 1e-6


def _random_dataset(seed: int, n_rows: int, n_features: int,
                    density: float) -> VectorDataset:
    rng = np.random.default_rng(seed)
    dense = rng.random((n_rows, n_features))
    dense[rng.random((n_rows, n_features)) > density] = 0.0
    return VectorDataset.from_dense(dense, name=f"random[seed={seed}]")


def _clear_threshold(dataset: VectorDataset, threshold: float,
                     measure: str) -> float:
    """Nudge *threshold* so no exact similarity sits within BOUNDARY of it."""
    loop = ENGINE.search(dataset, -2.0, measure, backend="exact-loop")
    sims = np.array([p.similarity for p in loop.pairs])
    while len(sims) and np.min(np.abs(sims - threshold)) <= BOUNDARY:
        threshold += 3.0 * BOUNDARY
    return threshold


def _assert_exact_parity(dataset: VectorDataset, threshold: float,
                         measure: str, backend: str, options: dict) -> None:
    reference = ENGINE.search(dataset, threshold, measure, backend="exact-loop")
    result = ENGINE.search(dataset, threshold, measure, backend=backend,
                           **options)
    assert result.exact
    assert result.pair_set() == reference.pair_set(), (
        f"{backend} ({options}) disagrees with exact-loop at t={threshold} "
        f"({measure}) on {dataset.name}")
    expected = reference.similarities()
    for pair, similarity in result.similarities().items():
        assert similarity == pytest.approx(expected[pair], abs=1e-9)


def _exact_variants_for(measure: str):
    for param in EXACT_VARIANTS:
        backend, options = param.values
        if make_backend(backend, **options).supports(measure):
            yield backend, options


# --------------------------------------------------------------------- #
# Registry sanity
# --------------------------------------------------------------------- #

def test_all_expected_backends_registered():
    assert {"exact-loop", "exact-blocked", "prefix-filter",
            "bayeslsh", "sharded-blocked"} <= set(available_backends())


def test_backends_are_apss_backend_instances():
    for name in available_backends():
        backend = make_backend(name)
        assert isinstance(backend, ApssBackend)
        assert backend.name == name


def test_parity_roster_covers_sharded_worker_counts():
    """Registry introspection must produce the sharded worker-count,
    scheduling and transport variants: 1/2/4 workers, the stealing x
    borrowing grid, the bound (static-binding) scheduler, and a
    shared-memory-off pass."""
    sharded = [options for param in EXACT_VARIANTS
               for name, options in [param.values] if name == "sharded-blocked"]
    assert sorted({v.get("n_workers") for v in sharded}) == [1, 2, 4]
    # The full stealing x borrowing grid is parity-checked at 2 workers.
    grid = {(v["steal"], v["borrow_slabs"]) for v in sharded
            if v.get("n_workers") == 2
            and "steal" in v and "borrow_slabs" in v}
    assert grid == {(False, False), (False, True), (True, False), (True, True)}
    # Static binding ("bound"), both 4-worker schedulers, and the pickled
    # transport under stealing each get a pass of their own.
    assert any(v.get("steal") == "bound" for v in sharded)
    assert {v.get("steal") for v in sharded
            if v.get("n_workers") == 4} >= {False, True}
    assert any(v.get("use_shared_memory") is False and v.get("steal") is True
               for v in sharded)


def test_every_parity_variant_instantiates():
    for param in EXACT_VARIANTS:
        backend, options = param.values
        assert make_backend(backend, **options).exact
    for param in APPROX_VARIANTS:
        backend, options = param.values
        assert not make_backend(backend, **options).exact


def test_parity_roster_covers_bayeslsh_candidate_strategies():
    """Registry introspection must exercise both candidate generators."""
    variants = [options for param in APPROX_VARIANTS
                for name, options in [param.values] if name == "bayeslsh"]
    assert [v["candidate_strategy"] for v in variants] == ["all", "banded"]


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown APSS backend"):
        ENGINE.search(make_clustered_vectors(5, 3, 2, seed=0), 0.5,
                      backend="no-such-backend")


def test_unsupported_measure_raises():
    with pytest.raises(ValueError, match="does not support measure"):
        ENGINE.search(make_clustered_vectors(5, 3, 2, seed=0), 0.5,
                      measure="dot", backend="prefix-filter")


# --------------------------------------------------------------------- #
# Hypothesis properties: exact backends == exact-loop
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(2, 24),
       n_features=st.integers(2, 16),
       density=st.floats(0.2, 1.0),
       threshold=st.floats(0.05, 0.95),
       measure=st.sampled_from(["cosine", "jaccard", "dot"]))
def test_exact_backends_match_reference_random_data(seed, n_rows, n_features,
                                                    density, threshold, measure):
    dataset = _random_dataset(seed, n_rows, n_features, density)
    threshold = _clear_threshold(dataset, threshold, measure)
    for backend, options in _exact_variants_for(measure):
        _assert_exact_parity(dataset, threshold, measure, backend, options)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       threshold=st.floats(-0.8, 0.8),
       measure=st.sampled_from(["cosine", "jaccard"]))
def test_exact_backends_match_reference_znormed_negative_thresholds(
        seed, threshold, measure):
    """z-normed data produces negative cosines; parity must survive t <= 0."""
    base = _random_dataset(seed, 12, 5, 0.9).z_normalized()
    threshold = _clear_threshold(base, threshold, measure)
    for backend, options in _exact_variants_for(measure):
        _assert_exact_parity(base, threshold, measure, backend, options)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       n_rows=st.integers(10, 60),
       threshold=st.floats(0.1, 0.7),
       measure=st.sampled_from(["cosine", "jaccard"]))
def test_exact_backends_match_reference_csr_sparse_data(seed, n_rows,
                                                        threshold, measure):
    """Direct-CSR sparse data (empty-ish rows, banded clusters) parity."""
    dataset = sparse_random_dataset(seed, n_rows, 40, density=0.2, n_clusters=3)
    threshold = _clear_threshold(dataset, threshold, measure)
    for backend, options in _exact_variants_for(measure):
        _assert_exact_parity(dataset, threshold, measure, backend, options)


@pytest.mark.parametrize("backend,options", EXACT_VARIANTS)
@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
@pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
def test_exact_backends_match_reference_fixture_datasets(
        clustered_dataset, sparse_corpus, measure, threshold, backend, options):
    if not make_backend(backend, **options).supports(measure):
        pytest.skip(f"{backend} does not support {measure}")
    for dataset in (clustered_dataset, sparse_corpus):
        threshold = _clear_threshold(dataset, threshold, measure)
        _assert_exact_parity(dataset, threshold, measure, backend, options)


def test_blocked_backend_parity_across_block_sizes():
    """Block boundaries must not change the result (off-by-one hunting)."""
    dataset = make_sparse_corpus(40, 150, avg_doc_length=12, n_topics=4, seed=21)
    reference = ENGINE.search(dataset, 0.2, "cosine", backend="exact-loop")
    for block_rows in (1, 3, 7, 39, 40, 64):
        result = ENGINE.search(dataset, 0.2, "cosine",
                               backend="exact-blocked", block_rows=block_rows)
        assert result.pair_set() == reference.pair_set()


def test_sharded_backend_parity_across_block_and_shard_geometry():
    """Shard/block geometry must not change the result either."""
    dataset = make_sparse_corpus(40, 150, avg_doc_length=12, n_topics=4, seed=21)
    reference = ENGINE.search(dataset, 0.2, "cosine", backend="exact-loop")
    for block_rows in (1, 7, 40):
        for strategy in ("striped", "contiguous", "balanced"):
            result = ENGINE.search(
                dataset, 0.2, "cosine", backend="sharded-blocked",
                block_rows=block_rows, n_workers=2, shards_per_worker=3,
                partition_strategy=strategy)
            assert result.pair_set() == reference.pair_set(), (
                f"block_rows={block_rows} strategy={strategy}")


# --------------------------------------------------------------------- #
# Approximate backends: recall envelope instead of equality
# --------------------------------------------------------------------- #

@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       threshold=st.floats(0.3, 0.8),
       measure=st.sampled_from(["cosine", "jaccard"]))
def test_bayeslsh_recall_envelope(seed, threshold, measure):
    """BayesLSH must cover the comfortably-above set and stay inside the
    comfortably-below complement (its errors concentrate at the boundary)."""
    dataset = _random_dataset(seed, 20, 8, 0.7)
    exact = ENGINE.search(dataset, -2.0, measure, backend="exact-loop")
    sims = exact.similarities()
    retained = ENGINE.search(dataset, threshold, measure, backend="bayeslsh",
                             n_hashes=256, seed=0).pair_set()

    margin = 0.2
    clearly_above = {p for p, s in sims.items() if s >= threshold + margin}
    clearly_below = {p for p, s in sims.items() if s <= threshold - margin}
    if clearly_above:
        recall = len(clearly_above & retained) / len(clearly_above)
        assert recall >= 0.9, (
            f"bayeslsh recall {recall:.2f} on pairs >= t+{margin}")
    leaked = clearly_below & retained
    assert len(leaked) <= max(1, len(clearly_below)) * 0.1, (
        f"bayeslsh retained {len(leaked)} pairs <= t-{margin}")


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       threshold=st.floats(0.3, 0.8),
       measure=st.sampled_from(["cosine", "jaccard"]))
def test_bayeslsh_banded_retained_subset_of_all_pairs(seed, threshold, measure):
    """With identical sketches (same seed), per-pair verification is
    deterministic, so the banded strategy — whose candidate set is a subset
    of all pairs — must retain a subset of the all-pairs run's retained set."""
    dataset = _random_dataset(seed, 30, 8, 0.6)
    runs = {}
    for options in get_backend_class("bayeslsh").parity_variants():
        result = ENGINE.search(dataset, threshold, measure, backend="bayeslsh",
                               n_hashes=64, seed=0, **options)
        assert not result.exact
        assert result.details["candidate_strategy"] == options["candidate_strategy"]
        runs[options["candidate_strategy"]] = result
    assert runs["banded"].pair_set() <= runs["all"].pair_set()
    all_sims = runs["all"].similarities()
    for pair, similarity in runs["banded"].similarities().items():
        assert similarity == pytest.approx(all_sims[pair], abs=1e-12)


def test_bayeslsh_auto_strategy_resolves_by_row_count():
    backend = make_backend("bayeslsh", banded_min_rows=16)
    assert backend.resolve_strategy(15) == "all"
    assert backend.resolve_strategy(16) == "banded"
    pinned = make_backend("bayeslsh", candidate_strategy="banded")
    assert pinned.resolve_strategy(2) == "banded"
    dataset = make_clustered_vectors(20, 8, 3, seed=5)
    result = ENGINE.search(dataset, 0.8, "cosine", backend="bayeslsh",
                           n_hashes=64, seed=0, banded_min_rows=8)
    assert result.details["candidate_strategy"] == "banded"


def test_bayeslsh_reports_pruning_stats():
    dataset = make_clustered_vectors(40, 8, 3, seed=5)
    result = ENGINE.search(dataset, 0.8, "cosine", backend="bayeslsh",
                           n_hashes=128, seed=0)
    assert not result.exact
    assert result.n_candidates == 40 * 39 // 2
    assert result.n_pruned > 0
    assert result.details["hash_comparisons"] > 0
