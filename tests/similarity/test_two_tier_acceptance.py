"""End-to-end acceptance of two-tier HTAP serving (ISSUE 7).

The scenario: a near-duplicate corpus already probed once, then appended.
The probe on the appended dataset must be answered from the sketch tier —
delta-extended at O(Δn·n) cost, never a fresh quadratic pass — with
measured recall at or above the ``1 − ε`` bound it advertises, and after
background refinement the store entry must be **bit-identical** to one
written by a direct exact sweep.  Every kernel invocation is audited
through the shared ``ApssEngine.search_calls`` counter.

The tier-1 test runs the full cycle at 1200 rows (past the
``candidate_strategy="auto"`` banding switch); the ``slow``-marked test is
the ISSUE's literal 5000-row criterion including the wall-clock
o(exact-sweep) bound for time-to-first-answer.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datasets import VectorDataset
from repro.similarity import ApssEngine, CachedApssEngine, TieredApssEngine
from repro.similarity.backends.bayeslsh import BANDED_DEFAULT_MIN_ROWS
from repro.store import SimilarityStore

THRESHOLD = 0.5
SKETCH = {"n_hashes": 256, "seed": 0, "candidate_strategy": "auto",
          "band_size": 4}


def near_duplicate_corpus(seed: int, n_base: int, vocab: int = 2000,
                          doc_length: int = 40) -> list[dict]:
    """``2 * n_base`` binary doc rows: each base doc plus a near duplicate.

    The duplicate swaps 4 of *doc_length* tokens, so duplicate pairs sit at
    Jaccard ~0.8 while unrelated docs sit near 0 — the similarity geometry
    near-duplicate detection (and minhash banding) is built for.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_base):
        base = rng.choice(vocab, size=doc_length, replace=False)
        duplicate = base.copy()
        swap = rng.choice(doc_length, size=4, replace=False)
        duplicate[swap] = rng.choice(vocab, size=4, replace=False)
        rows.append({int(t): 1.0 for t in base})
        rows.append({int(t): 1.0 for t in duplicate})
    return rows


def _two_tier_cycle(tmp_path, n_rows: int, n_appended: int):
    """Run the full probe → append → probe → refine → re-serve cycle.

    Returns timing/recall observables for the caller's scale-specific
    assertions; every scale-independent invariant is asserted inline.
    """
    rows = near_duplicate_corpus(12, n_rows // 2)
    parent = VectorDataset.from_rows(rows[:n_rows - n_appended],
                                     n_features=2000, name="neardup-parent")
    child = parent.append_rows(rows[n_rows - n_appended:],
                               name="neardup-child")
    assert child.n_rows == n_rows >= BANDED_DEFAULT_MIN_ROWS

    engine = ApssEngine()
    store = SimilarityStore(tmp_path / "tiered")
    with TieredApssEngine(engine=engine, store=store, refine="off",
                          sketch_options=dict(SKETCH)) as tiered:
        # History: the parent corpus was probed earlier (sketch tier only —
        # its floor stays approximate so the audit below isolates the
        # appended probe's own refinement).
        first = tiered.probe(parent, THRESHOLD, "jaccard")
        assert first.tier == "sketch"
        assert engine.search_calls == 1          # one bayeslsh kernel pass
        tiered.refine = "background"

        # The interactive probe on the appended dataset: answered from the
        # sketch tier by delta extension — zero kernel invocations, only
        # new-vs-all candidates verified.
        start = time.perf_counter()
        answer = tiered.probe(child, THRESHOLD, "jaccard")
        first_answer_seconds = time.perf_counter() - start
        assert answer.tier == "sketch"
        assert answer.bound == pytest.approx(tiered.recall_bound)
        assert engine.search_calls == 1
        assert tiered.sketch_cache.delta_extensions == 1
        verified = answer.result.details["apss"].n_candidates
        assert verified <= 4 * n_appended * n_rows   # the O(Δn·n) contract
        assert verified < n_rows * (n_rows - 1) // 2 / 10

        # Exact ground truth (independent engine: not part of the audit).
        start = time.perf_counter()
        exact = ApssEngine().search(child, THRESHOLD, "jaccard")
        exact_seconds = time.perf_counter() - start
        reference = exact.pair_set()
        recall = (len(answer.result.pair_set() & reference)
                  / max(1, len(reference)))
        assert recall >= answer.bound, (
            f"sketch tier served recall {recall:.4f}, advertised bound "
            f"{answer.bound}")

        # Background refinement upgrades the entry in place...
        tiered.wait()
        assert engine.search_calls == 2          # exactly one exact sweep
        upgraded = tiered.probe(child, THRESHOLD, "jaccard")
        assert upgraded.tier == "exact" and upgraded.bound == 1.0
        assert upgraded.result.pair_set() == reference
        assert engine.search_calls == 2          # re-serve is kernel-free
        key = tiered._exact_key(child.fingerprint(), "jaccard")

    # ...and the upgraded entry is bit-identical to a direct exact sweep's.
    direct = CachedApssEngine(engine=ApssEngine(),
                              store=SimilarityStore(tmp_path / "direct"))
    direct.search(child, THRESHOLD, "jaccard")
    assert store._path("pairs", key).read_bytes() == \
        direct.store._path("pairs", key).read_bytes()
    return first_answer_seconds, exact_seconds


def test_two_tier_cycle_at_banding_scale(tmp_path):
    """Tier-1 scale: the full cycle just past the auto-banding switch."""
    _two_tier_cycle(tmp_path, n_rows=1200, n_appended=50)


@pytest.mark.slow
def test_appended_5000_row_probe_acceptance(tmp_path):
    """The ISSUE acceptance criterion, verbatim scale: an interactive probe
    on an appended 5000-row dataset is answered from the sketch tier in
    o(exact) time with measured recall >= 1 - epsilon."""
    first_answer_seconds, exact_seconds = _two_tier_cycle(
        tmp_path, n_rows=5000, n_appended=100)
    assert first_answer_seconds < exact_seconds, (
        f"sketch-tier answer took {first_answer_seconds:.2f}s, exact sweep "
        f"{exact_seconds:.2f}s")
