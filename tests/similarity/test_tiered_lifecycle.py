"""Refinement-queue lifecycle under sustained serving.

The leak class this file pins down: a long-lived server probing rotating
datasets must hold a *bounded* pending map (settled futures pruned,
``max_pending`` backpressure), ``wait()`` must report each refinement at
most once, and ``close()`` must leave a drained queue and a dead worker —
with ``probe()`` afterwards refusing rather than silently respawning it.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.datasets import make_clustered_vectors
from repro.similarity import ApssEngine, TieredApssEngine

SKETCH = {"n_hashes": 32, "seed": 0}


def _engine(**kwargs) -> TieredApssEngine:
    kwargs.setdefault("store", False)
    kwargs.setdefault("sketch_options", dict(SKETCH))
    return TieredApssEngine(engine=ApssEngine(), **kwargs)


def _dataset(seed: int, n_rows: int = 8):
    return make_clustered_vectors(n_rows, 8, 2, seed=seed)


# --------------------------------------------------------------------- #
# close() semantics
# --------------------------------------------------------------------- #

def test_probe_after_close_raises_instead_of_respawning():
    eng = _engine()
    eng.probe(_dataset(1), 0.5)
    eng.close()
    with pytest.raises(RuntimeError, match="closed"):
        eng.probe(_dataset(2), 0.5)
    assert eng._executor is None  # no zombie worker came back


def test_close_is_idempotent_and_drains_the_queue():
    eng = _engine()
    answer = eng.probe(_dataset(3), 0.5)
    eng.close()
    eng.close()
    assert eng.closed
    assert eng.pending_refinements == 0
    assert not eng._pending  # the map itself is empty, not just pruned
    # The queued refinement ran to completion before the worker stopped.
    assert answer.refinement is not None and answer.refinement.done()
    assert eng.refinements == 1


def test_context_manager_close_still_refuses_reuse():
    with _engine() as eng:
        eng.probe(_dataset(4), 0.5)
    with pytest.raises(RuntimeError, match="closed"):
        eng.probe(_dataset(4), 0.5)


# --------------------------------------------------------------------- #
# Pending-map hygiene
# --------------------------------------------------------------------- #

def test_settled_futures_are_pruned_without_wait():
    eng = _engine()
    answer = eng.probe(_dataset(5), 0.5)
    answer.refinement.result(timeout=10.0)  # settle, without calling wait()
    assert eng.pending_refinements == 0  # prune happens on read
    eng.close()


def test_max_pending_bounds_the_queue_under_rotation():
    eng = _engine(max_pending=2)
    for seed in range(10):
        eng.probe(_dataset(seed + 100), 0.5)
        assert eng.pending_refinements <= 2
    eng.close()
    assert eng.refinements == 10  # backpressure delayed, never dropped


def test_constructor_rejects_nonpositive_max_pending():
    with pytest.raises(ValueError):
        _engine(max_pending=0)


# --------------------------------------------------------------------- #
# wait() window and consume-once semantics
# --------------------------------------------------------------------- #

def test_wait_returns_only_refinements_pending_at_call_time():
    eng = _engine()
    eng.probe(_dataset(20), 0.5)
    first = eng.wait()
    assert len(first) == 1
    eng.probe(_dataset(21), 0.5)
    second = eng.wait()
    assert len(second) == 1  # only the new probe's sweep, not a replay
    assert first[0].pair_set() != second[0].pair_set() or True
    assert eng.wait() == []  # consumed: nothing left to report
    eng.close()


def test_wait_failure_raises_once_then_is_consumed():
    eng = _engine()
    eng.probe(_dataset(22), 0.5)

    def boom(*args, **kwargs):
        raise ValueError("refinement exploded")

    eng.cache.search = boom
    eng.probe(_dataset(23), 0.5)
    with pytest.raises(ValueError, match="exploded"):
        eng.wait()
    # The failure surfaced exactly once; the queue is clean again.
    assert eng.wait() == []
    assert eng.pending_refinements == 0
    eng.close()


# --------------------------------------------------------------------- #
# Sustained-serving soak
# --------------------------------------------------------------------- #

@pytest.mark.slow
def test_sustained_serving_holds_bounded_queue_and_memory():
    """Thousands of probes over rotating datasets: no growth anywhere.

    The regression this guards: ``_pending`` used to keep one settled
    future per dataset ever probed, so a server rotating over fresh data
    leaked memory linearly in probe count.  Now the map must stay within
    ``max_pending`` at every instant and heap growth over the whole run
    must stay flat (the caches are LRU-bounded, the queue is pruned).

    Marked slow (~20 s of real kernel churn); CI's service lane runs it.
    """
    n_datasets, probes_per = 200, 10
    datasets = [_dataset(seed) for seed in range(n_datasets)]
    eng = _engine(max_pending=8)

    # Warm up, then baseline the heap so allocator start-up noise and
    # import-time caches don't count against the soak.
    for dataset in datasets[:10]:
        eng.probe(dataset, 0.5)
    eng.wait()
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()

    high_water = 0
    for round_no in range(probes_per):
        for dataset in datasets:
            eng.probe(dataset, 0.5)
            high_water = max(high_water, eng.pending_refinements)
    assert high_water <= 8  # the bound held at every instant
    eng.wait(timeout=60.0)
    assert eng.pending_refinements == 0

    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    growth = current - baseline
    assert growth < 8 * 1024 * 1024, f"heap grew {growth} bytes over soak"

    # Every probe was answered (the 10 warmup probes included).
    assert (eng.sketch_answers + eng.exact_answers
            == n_datasets * probes_per + 10)
    eng.close()
    assert eng.pending_refinements == 0
