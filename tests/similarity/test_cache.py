"""Tests for the cross-threshold APSS sweep cache.

These tests also run in the CI persistence lane (``REPRO_APSS_STORE`` set),
where every default-constructed ``CachedApssEngine`` spills to one shared
store directory.  The ``dataset`` fixture therefore derives a *unique* seed
per test from the test name: hit/miss expectations stay exact because no
other test can have pre-populated the store for this test's fingerprint.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.datasets import VectorDataset, make_clustered_vectors
from repro.similarity import ApssEngine, CachedApssEngine


@pytest.fixture
def dataset(request):
    seed = zlib.crc32(request.node.name.encode()) % 100_000
    return make_clustered_vectors(50, 6, 3, separation=4.0, seed=seed)


def test_cache_hits_filter_the_memoised_floor_search(dataset):
    engine = CachedApssEngine()
    floor = engine.search(dataset, 0.2)
    assert (engine.hits, engine.misses) == (0, 1)

    for threshold in (0.4, 0.6, 0.8):
        cached = engine.search(dataset, threshold)
        fresh = ApssEngine().search(dataset, threshold)
        assert cached.pair_set() == fresh.pair_set()
        assert cached.details["cache"]["hit"]
        assert cached.details["cache"]["floor_threshold"] == floor.threshold
        assert all(p.similarity >= threshold for p in cached.pairs)
    assert (engine.hits, engine.misses) == (3, 1)
    assert len(engine) == 1


def test_lower_threshold_lowers_the_cached_floor(dataset):
    engine = CachedApssEngine()
    engine.search(dataset, 0.6)
    below = engine.search(dataset, 0.3)  # below the floor: fresh search
    assert (engine.hits, engine.misses) == (0, 2)
    assert "cache" not in below.details
    again = engine.search(dataset, 0.5)  # now served from the new floor
    assert again.details["cache"]["floor_threshold"] == pytest.approx(0.3)
    assert engine.hits == 1


def test_cache_keys_separate_measures_and_backends(dataset):
    engine = CachedApssEngine()
    engine.search(dataset, 0.5, "cosine")
    engine.search(dataset, 0.5, "jaccard")
    engine.search(dataset, 0.5, "cosine", backend="exact-loop")
    assert engine.misses == 3
    assert len(engine) == 3
    # Each key serves its own hits.
    engine.search(dataset, 0.7, "jaccard")
    assert engine.hits == 1


def test_cache_distinguishes_mutated_datasets(dataset):
    engine = CachedApssEngine()
    engine.search(dataset, 0.5)
    twin = VectorDataset(dataset.indptr.copy(), dataset.indices.copy(),
                         dataset.data.copy(), dataset.n_features,
                         name="renamed-twin")
    engine.search(twin, 0.6)  # identical content: hit despite the new name
    assert (engine.hits, engine.misses) == (1, 1)

    twin.data[0] += 1.0
    engine.search(twin, 0.6)  # mutated content: fresh fingerprint, miss
    assert (engine.hits, engine.misses) == (1, 2)


def test_fingerprint_tracks_content_not_name(dataset):
    twin = VectorDataset(dataset.indptr.copy(), dataset.indices.copy(),
                         dataset.data.copy(), dataset.n_features,
                         name="other-name")
    assert twin.fingerprint() == dataset.fingerprint()
    twin.data[-1] *= 2.0
    assert twin.fingerprint() != dataset.fingerprint()


def test_clear_drops_memoised_results(dataset):
    engine = CachedApssEngine()
    engine.search(dataset, 0.5)
    engine.clear()
    assert len(engine) == 0
    engine.search(dataset, 0.7)
    assert engine.misses == 2


def test_constructor_rejects_engine_plus_options():
    with pytest.raises(ValueError, match="either an engine or backend options"):
        CachedApssEngine(ApssEngine(), backend="exact-loop")
    with pytest.raises(ValueError, match="max_entries"):
        CachedApssEngine(max_entries=0)


def test_cache_evicts_least_recently_used_entry(dataset):
    engine = CachedApssEngine(max_entries=2)
    engine.search(dataset, 0.5, "cosine")
    engine.search(dataset, 0.5, "jaccard")
    engine.search(dataset, 0.6, "cosine")    # refresh cosine's recency
    engine.search(dataset, 0.5, "dot")       # evicts jaccard, not cosine
    assert len(engine) == 2
    engine.search(dataset, 0.7, "cosine")    # still cached
    engine.search(dataset, 0.6, "jaccard")   # evicted: fresh search
    assert (engine.hits, engine.misses) == (2, 4)


def test_wrapped_engine_options_flow_through(dataset):
    engine = CachedApssEngine(backend="exact-blocked", block_rows=7)
    result = engine.search(dataset, 0.5)
    assert result.details["block_rows"] == 7
    blocks = list(engine.iter_similarity_blocks(dataset))
    assert len(blocks[0][0]) == 7


def test_execution_options_do_not_fragment_cache_keys(dataset):
    """Worker counts and injected executors change scheduling, not results:
    a sweep cached by a 1-worker pass must serve a 4-worker probe."""
    engine = CachedApssEngine()
    floor = engine.search(dataset, 0.3, backend="sharded-blocked", n_workers=1)
    hit = engine.search(dataset, 0.5, backend="sharded-blocked", n_workers=4)
    assert (engine.hits, engine.misses) == (1, 1)
    assert hit.details["cache"]["floor_threshold"] == floor.threshold

    fresh = ApssEngine().search(dataset, 0.5, backend="sharded-blocked",
                                n_workers=4)
    assert [p.as_tuple() for p in hit.pairs] == \
        [p.as_tuple() for p in fresh.pairs]


def test_sweep_partly_cached_partly_multiworker_is_byte_identical(dataset):
    """Mixed sweep: miss at 1 worker, hit at 4 workers, below-floor fresh
    pass at 4 workers — every answer byte-identical to an uncached engine."""
    cached = CachedApssEngine()
    plain = ApssEngine()
    probes = [(0.4, {"n_workers": 1}),   # miss: single-process pass
              (0.6, {"n_workers": 4}),   # hit: filtered from the 0.4 floor
              (0.2, {"n_workers": 4}),   # below floor: multi-worker pass
              (0.5, {"n_workers": 2})]   # hit again, from the 0.2 floor
    for threshold, options in probes:
        got = cached.search(dataset, threshold, backend="sharded-blocked",
                            **options)
        expected = plain.search(dataset, threshold, backend="sharded-blocked",
                                **options)
        assert [p.as_tuple() for p in got.pairs] == \
            [p.as_tuple() for p in expected.pairs], (threshold, options)
    assert (cached.hits, cached.misses) == (2, 2)


def test_eviction_under_concurrent_access_does_not_corrupt_entries(dataset):
    """Concurrent-ish hammering (threads x measures x thresholds) against a
    2-entry LRU: every answer must still match an uncached engine and the
    bound must hold — eviction races may cost hits, never correctness."""
    from concurrent.futures import ThreadPoolExecutor

    engine = CachedApssEngine(max_entries=2)
    expected = {
        (measure, threshold):
            ApssEngine().search(dataset, threshold, measure).pair_set()
        for measure in ("cosine", "jaccard", "dot")
        for threshold in (0.3, 0.5, 0.7)}

    def probe(task):
        measure, threshold = task
        result = engine.search(dataset, threshold, measure,
                               backend="sharded-blocked", n_workers=1)
        return task, result.pair_set()

    tasks = [key for key in expected for _ in range(3)]
    with ThreadPoolExecutor(max_workers=4) as pool:
        for task, pair_set in pool.map(probe, tasks):
            assert pair_set == expected[task], task
    assert len(engine) <= 2
    # hit/miss counters may under-count under thread races (non-atomic +=);
    # the contract here is bounded memory and correct answers, checked above.
    assert engine.misses >= 1


def test_late_registered_backend_options_resolve_at_lookup_time(dataset):
    """Regression: a backend registered *after* the cache was constructed
    must still have its declared execution_options stripped from keys — the
    declared options are introspected per lookup, never captured up front."""
    from repro.similarity.backends.base import (ApssBackend, BackendOutput,
                                                _REGISTRY, register_backend)

    engine = CachedApssEngine()  # constructed before the backend exists

    @register_backend
    class LateToyBackend(ApssBackend):
        name = "late-toy"
        exact = True
        measures = ("cosine",)
        execution_options = ("n_probes",)

        def __init__(self, n_probes: int = 1) -> None:
            self.n_probes = n_probes

        def search(self, dataset, threshold, measure="cosine"):
            from repro.similarity import apss_search

            exact = apss_search(dataset, threshold, measure,
                                backend="exact-blocked")
            return BackendOutput(pairs=exact.pairs,
                                 n_candidates=exact.n_candidates)

    try:
        engine.search(dataset, 0.3, backend="late-toy", n_probes=1)
        hit = engine.search(dataset, 0.5, backend="late-toy", n_probes=4)
        assert (engine.hits, engine.misses) == (1, 1), \
            "execution options of a late-registered backend fragmented keys"
        assert hit.details["cache"]["hit"]
    finally:
        _REGISTRY.pop("late-toy", None)


def test_unknown_backend_fails_loudly_instead_of_fragmenting_keys(dataset):
    """An option-carrying search naming an unregistered backend raises from
    key resolution (the search would fail anyway) rather than silently
    building a key with unstripped options."""
    engine = CachedApssEngine()
    with pytest.raises(KeyError, match="unknown APSS backend"):
        engine.search(dataset, 0.5, backend="never-registered", n_workers=4)


def test_delta_workers_extension_is_byte_identical(dataset):
    """A cache configured for sharded delta ingest extends an appended
    dataset's floor identically to the single-process delta path."""
    parent = dataset.subset(range(dataset.n_rows - 6), name="parent")
    child = parent.append_rows(dataset.subset(
        range(dataset.n_rows - 6, dataset.n_rows)))

    # store=False: under the CI persistence lane the two engines would
    # otherwise share one on-disk store, and the second would restore the
    # first's extended floor instead of exercising its own delta path.
    single = CachedApssEngine(store=False)
    sharded = CachedApssEngine(store=False, delta_workers=2)
    for engine in (single, sharded):
        engine.search(parent, 0.3)
        extended = engine.search(child, 0.4)
        assert engine.delta_extensions == 1
        assert extended.details["cache"]["source"] == "delta"
    expected = ApssEngine().search(child, 0.4)
    got_single = single.search(child, 0.4)
    got_sharded = sharded.search(child, 0.4)
    assert got_single.pair_set() == expected.pair_set()
    assert got_sharded.pair_set() == expected.pair_set()


def test_cached_pair_values_match_dense_matrix(dataset):
    from repro.similarity import pairwise_similarity_matrix

    engine = CachedApssEngine()
    engine.search(dataset, 0.1)
    sims = pairwise_similarity_matrix(dataset)
    result = engine.search(dataset, 0.75)
    expected = int(np.count_nonzero(
        np.triu(sims >= 0.75, k=1)))
    assert result.pair_count() == expected
