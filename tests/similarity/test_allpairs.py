"""Tests for the exact all-pairs similarity search baseline."""

import numpy as np
import pytest

from repro.datasets import VectorDataset, make_clustered_vectors
from repro.similarity import (
    SimilarPair,
    exact_all_pairs,
    exact_pair_count,
    pairwise_similarity_matrix,
    similarity_histogram,
)


def test_exact_all_pairs_small_example():
    ds = VectorDataset.from_rows([
        {0: 1.0}, {0: 1.0, 1: 0.1}, {1: 1.0},
    ], n_features=2)
    pairs = exact_all_pairs(ds, threshold=0.9)
    found = {(p.first, p.second) for p in pairs}
    assert (0, 1) in found
    assert (0, 2) not in found


def test_exact_all_pairs_returns_similarities():
    ds = VectorDataset.from_rows([{0: 1.0}, {0: 2.0}], n_features=1)
    pairs = exact_all_pairs(ds, threshold=0.5)
    assert len(pairs) == 1
    assert isinstance(pairs[0], SimilarPair)
    assert pairs[0].similarity == pytest.approx(1.0)
    assert pairs[0].as_tuple()[:2] == (0, 1)


def test_exact_pair_count_matches_all_pairs():
    ds = make_clustered_vectors(40, 6, 3, seed=2)
    thresholds = [0.3, 0.6, 0.9]
    counts = exact_pair_count(ds, thresholds)
    for t in thresholds:
        assert counts[t] == len(exact_all_pairs(ds, t))


def test_exact_pair_count_monotone_in_threshold():
    ds = make_clustered_vectors(50, 5, 3, seed=3)
    counts = exact_pair_count(ds, [0.1, 0.3, 0.5, 0.7, 0.9])
    values = [counts[t] for t in sorted(counts)]
    assert values == sorted(values, reverse=True)


def test_similarity_histogram_total_pairs():
    ds = make_clustered_vectors(30, 4, 2, seed=4)
    counts, edges = similarity_histogram(ds, bins=20)
    assert counts.sum() == 30 * 29 // 2
    assert len(edges) == 21


def test_jaccard_measure_supported():
    ds = VectorDataset.from_rows([{0: 1, 1: 1}, {0: 1, 1: 1}, {2: 1}], n_features=3)
    counts = exact_pair_count(ds, [0.99], measure="jaccard")
    assert counts[0.99] == 1
