"""Tests for the sharded multi-process APSS backend.

Three layers, mirroring how the backend can fail:

* **Planning** — the partition module must cover every block exactly once,
  for every strategy, for any geometry.
* **Scheduling** — via the harness's ``ShardOrderReplayExecutor``, shard
  completions are replayed in adversarial (LIFO, shuffled, explicitly
  permuted) orders and injected failures, deterministically: merged output
  must be canonical and identical, and a failing shard must surface as
  ``ShardExecutionError`` — never a hang, never dropped pairs.
* **Real processes** — the same contracts through an actual
  ``ProcessPoolExecutor``, including the worker-side fault-injection hook
  (``inject_shard_fault``) crossing a genuine pickle/process boundary.

The ``slow``-marked stress test (deselected by default; ``pytest -m slow``)
pushes a 20k-row sparse dataset through the sharded backend under an 8 MB
per-worker budget and checks pair-set equality with the cached
single-process sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import (ShardOrderReplayExecutor, replay_factory, seeded_corpus,
                     sparse_random_dataset)
from repro.similarity import (ApssEngine, BlockShard, CachedApssEngine,
                              InlineShardExecutor, ShardExecutionError,
                              iter_similarity_blocks,
                              iter_similarity_blocks_sharded, make_backend,
                              partition_blocks, resolve_worker_count)
from repro.similarity.backends.sharded import InjectedShardFault
from repro.similarity.partition import block_ranges

ENGINE = ApssEngine()


@pytest.fixture(scope="module")
def dataset():
    return seeded_corpus(101, n_docs=70, vocabulary_size=260)


@pytest.fixture(scope="module")
def reference(dataset):
    return ENGINE.search(dataset, 0.25, "cosine", backend="exact-blocked")


# --------------------------------------------------------------------- #
# Partition planning
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("strategy", ["striped", "contiguous", "balanced"])
@pytest.mark.parametrize("n_rows,block_rows,n_shards", [
    (1, 1, 1), (10, 3, 2), (10, 3, 7), (100, 7, 4), (64, 64, 4), (33, 1, 5),
])
def test_partition_covers_every_block_exactly_once(n_rows, block_rows,
                                                   n_shards, strategy):
    shards = partition_blocks(n_rows, block_rows, n_shards, strategy=strategy)
    covered = sorted(block for shard in shards for block in shard.blocks)
    assert covered == block_ranges(n_rows, block_rows)
    assert [s.shard_id for s in shards] == list(range(len(shards)))
    assert all(shard.blocks for shard in shards)
    assert len(shards) <= n_shards


def test_partition_balances_triangular_cost():
    """No strategy may concentrate the triangle's heavy top rows in one shard."""
    n_rows = 1000
    for strategy in ("striped", "balanced"):
        shards = partition_blocks(n_rows, 10, 4, strategy=strategy)
        costs = [shard.search_cost(n_rows) for shard in shards]
        assert max(costs) <= 1.25 * min(costs), (strategy, costs)


def test_partition_rejects_bad_inputs():
    with pytest.raises(ValueError, match="unknown partition strategy"):
        partition_blocks(10, 2, 2, strategy="zigzag")
    with pytest.raises(ValueError, match="n_shards"):
        partition_blocks(10, 2, 0)
    with pytest.raises(ValueError, match="block_rows"):
        block_ranges(10, 0)


def test_resolve_worker_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_APSS_WORKERS", "3")
    assert resolve_worker_count() == 3
    assert resolve_worker_count(2) == 2  # explicit beats env
    assert make_backend("sharded-blocked").n_workers == 3
    monkeypatch.setenv("REPRO_APSS_WORKERS", "zero")
    with pytest.raises(ValueError, match="REPRO_APSS_WORKERS"):
        resolve_worker_count()
    monkeypatch.setenv("REPRO_APSS_WORKERS", "0")
    with pytest.raises(ValueError, match="n_workers"):
        resolve_worker_count()


def test_backend_constructor_validation():
    with pytest.raises(ValueError, match="partition strategy"):
        make_backend("sharded-blocked", partition_strategy="nope")
    with pytest.raises(ValueError, match="shards_per_worker"):
        make_backend("sharded-blocked", shards_per_worker=0)
    with pytest.raises(ValueError, match="block_rows"):
        make_backend("sharded-blocked", block_rows=-1)


# --------------------------------------------------------------------- #
# Canonical merge under adversarial completion orders
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("order", ["lifo", ("random", 7), [3, 1, 0, 2],
                                   [5, 4, 3, 2, 1, 0]])
def test_adversarial_shard_completion_orders_merge_canonically(
        dataset, reference, order):
    factory = replay_factory(order=order)
    # steal=False keeps the legacy one-task-per-shard fan-out this replay
    # harness drives (the stealing path has its own in test_stealing.py).
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, shards_per_worker=3, block_rows=5,
                           steal=False, executor_factory=factory)
    executor = factory.created[0]
    assert executor.submitted > 1
    # The replay really completed shards out of submission order...
    assert executor.completion_order != sorted(executor.completion_order)
    assert sorted(executor.completion_order) == list(range(executor.submitted))
    # ...yet the merged pair list is byte-identical to the single-process one.
    assert [p.as_tuple() for p in result.pairs] == \
        [p.as_tuple() for p in reference.pairs]


def test_completion_order_does_not_leak_into_pair_order(dataset):
    lifo = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                         n_workers=4, block_rows=3, steal=False,
                         executor_factory=replay_factory("lifo"))
    fifo = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                         n_workers=4, block_rows=3, steal=False,
                         executor_factory=replay_factory("fifo"))
    assert [p.as_tuple() for p in lifo.pairs] == [p.as_tuple() for p in fifo.pairs]
    firsts = [(p.first, p.second) for p in lifo.pairs]
    assert firsts == sorted(firsts)


def test_inline_executor_matches_process_pool(dataset):
    inline = ENGINE.search(dataset, 0.3, "jaccard", backend="sharded-blocked",
                           n_workers=1, block_rows=6)
    pooled = ENGINE.search(dataset, 0.3, "jaccard", backend="sharded-blocked",
                           n_workers=2, block_rows=6)
    assert [p.as_tuple() for p in inline.pairs] == \
        [p.as_tuple() for p in pooled.pairs]
    assert inline.details["n_workers"] == 1
    assert pooled.details["n_workers"] == 2


def test_inline_executor_protocol():
    executor = InlineShardExecutor()
    future = executor.submit(lambda x: x + 1, 41)
    assert future.done() and future.result() == 42
    boom = executor.submit(lambda: 1 / 0)
    assert isinstance(boom.exception(), ZeroDivisionError)
    executor.shutdown(cancel_futures=True)  # no-op, must not raise


# --------------------------------------------------------------------- #
# Fault injection: shard failures surface, never hang, never drop pairs
# --------------------------------------------------------------------- #

def test_replayed_shard_failure_surfaces(dataset):
    factory = replay_factory(order="lifo",
                             failures={2: RuntimeError("disk on fire")})
    with pytest.raises(ShardExecutionError, match="shard 2 failed"):
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, shards_per_worker=2, block_rows=5,
                      steal=False, executor_factory=factory)


def test_replayed_failure_in_last_completing_shard_surfaces(dataset):
    # FIFO replay + failure in the final shard: every other shard already
    # delivered pairs, which must all be discarded in favour of the error.
    factory = replay_factory(order="fifo",
                             failures={3: RuntimeError("late casualty")})
    with pytest.raises(ShardExecutionError) as excinfo:
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, shards_per_worker=2, block_rows=5,
                      steal=False, executor_factory=factory)
    assert excinfo.value.shard_id == 3
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_out_of_range_fault_target_fails_loudly(dataset):
    """A mistargeted fault hook must not make fault tests vacuously green."""
    with pytest.raises(ValueError, match="out of range"):
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=1, inject_shard_fault=99)


def test_worker_side_fault_injection_inline(dataset):
    with pytest.raises(ShardExecutionError, match="shard 1 failed"):
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=1, inject_shard_fault=1, block_rows=5)


def test_worker_side_fault_injection_through_real_processes(dataset):
    """The injected fault crosses a real pickle/process boundary and still
    surfaces as ShardExecutionError chained to the worker's exception."""
    with pytest.raises(ShardExecutionError) as excinfo:
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, inject_shard_fault=0, block_rows=5)
    assert excinfo.value.shard_id == 0
    assert isinstance(excinfo.value.__cause__, InjectedShardFault)


def test_failed_search_leaves_backend_reusable(dataset, reference):
    """After a failure the shared pool must still serve correct searches."""
    with pytest.raises(ShardExecutionError):
        ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                      n_workers=2, inject_shard_fault=0, block_rows=5)
    result = ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                           n_workers=2, block_rows=5)
    assert result.pair_set() == reference.pair_set()


def test_broken_shared_pool_is_evicted_and_rebuilt(dataset, reference):
    """A pool whose workers died abnormally must not poison later searches."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.similarity.backends import sharded as sharded_module

    ENGINE.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                  n_workers=2, block_rows=5)
    pool = sharded_module._POOLS[(2, False, 1.0)]
    for process in pool._processes.values():
        process.kill()
    for process in pool._processes.values():
        process.join()
    # Depending on whether the pool has noticed the deaths yet, the next
    # search either fails once (surfaced, never a hang) or is already served
    # by a rebuilt pool; either way the one after that must succeed.
    try:
        result = ENGINE.search(dataset, 0.25, "cosine",
                               backend="sharded-blocked", n_workers=2,
                               block_rows=5)
    except (ShardExecutionError, BrokenProcessPool):
        result = ENGINE.search(dataset, 0.25, "cosine",
                               backend="sharded-blocked", n_workers=2,
                               block_rows=5)
    assert result.pair_set() == reference.pair_set()
    assert sharded_module._POOLS[(2, False, 1.0)] is not pool


def test_inject_shard_fault_is_cache_keyed_not_swallowed(dataset):
    """A warm cache must not serve pairs for a search asked to fault."""
    from repro.similarity import CachedApssEngine

    cached = CachedApssEngine()
    cached.search(dataset, 0.25, "cosine", backend="sharded-blocked",
                  n_workers=1, block_rows=5)
    with pytest.raises(ShardExecutionError):
        cached.search(dataset, 0.4, "cosine", backend="sharded-blocked",
                      n_workers=1, block_rows=5, inject_shard_fault=1)


# --------------------------------------------------------------------- #
# Sharded slab streaming
# --------------------------------------------------------------------- #

def test_sharded_streaming_yields_identical_slabs_in_order(dataset):
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=9))
    for n_workers in (1, 2):
        # Copy at consume: multi-worker slabs are borrowed ring views,
        # valid only until the next iteration step.
        sharded = [(r, b.copy()) for r, b in iter_similarity_blocks_sharded(
            dataset, "cosine", block_rows=9, n_workers=n_workers)]
        assert [r for r, _ in sharded] == [r for r, _ in plain]
        for (_, expected), (_, got) in zip(plain, sharded):
            assert np.array_equal(expected, got)


def test_sharded_streaming_reorders_adversarial_completions(dataset):
    factory = replay_factory(order="lifo")
    sharded = [(r, b.copy()) for r, b in iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=9, n_workers=4,
        executor_factory=factory)]
    executor = factory.created[0]
    assert executor.completion_order != sorted(executor.completion_order)
    plain = list(iter_similarity_blocks(dataset, "cosine", block_rows=9))
    assert [r for r, _ in sharded] == [r for r, _ in plain]
    for (_, expected), (_, got) in zip(plain, sharded):
        assert np.array_equal(expected, got)


def test_sharded_streaming_respects_pending_window(dataset):
    factory = replay_factory(order="fifo")
    list(iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=9, n_workers=2, max_pending=2,
        executor_factory=factory))
    executor = factory.created[0]
    # With a window of 2, task k can only ever complete after task k-2 was
    # consumed: completion order stays within the window of submission order.
    for position, index in enumerate(executor.completion_order):
        assert abs(index - position) < 2


def test_sharded_streaming_fault_surfaces_after_earlier_blocks(dataset):
    yielded = []
    with pytest.raises(ShardExecutionError) as excinfo:
        for rows, slab in iter_similarity_blocks_sharded(
                dataset, "cosine", block_rows=9, n_workers=2,
                executor_factory=replay_factory("lifo"),
                inject_block_fault=3):
            yielded.append(rows)
    assert excinfo.value.block == (27, 36)
    assert yielded == [range(0, 9), range(9, 18), range(18, 27)]


def test_sharded_streaming_abandoned_generator_cancels_pending(dataset):
    factory = replay_factory(order="fifo")
    stream = iter_similarity_blocks_sharded(
        dataset, "cosine", block_rows=9, n_workers=2, max_pending=4,
        executor_factory=factory)
    next(stream)
    stream.close()
    executor = factory.created[0]
    pending = executor.submitted - len(executor.completion_order)
    assert pending >= 0  # nothing ran after close (lazy futures stay pending)


def test_engine_dispatches_streaming_to_sharded_backend(dataset):
    engine = ApssEngine("sharded-blocked", n_workers=2, block_rows=9)
    sharded = [(r, b.copy())
               for r, b in engine.iter_similarity_blocks(dataset, "cosine")]
    plain = list(ApssEngine().iter_similarity_blocks(dataset, "cosine",
                                                     block_rows=9))
    assert [r for r, _ in sharded] == [r for r, _ in plain]
    for (_, expected), (_, got) in zip(plain, sharded):
        assert np.array_equal(expected, got)


def test_streaming_consumers_work_through_sharded_engine(dataset):
    """A streaming reducer fed by the sharded engine matches the plain one."""
    from repro.similarity.streaming import streaming_similarity_histogram

    counts, edges = streaming_similarity_histogram(dataset, bins=16)
    engine = ApssEngine("sharded-blocked", n_workers=2)
    slabbed = np.zeros_like(counts)
    for rows, slab in engine.iter_similarity_blocks(dataset, "cosine"):
        row_ids = np.arange(rows.start, rows.stop)
        keep = np.arange(slab.shape[1])[None, :] > row_ids[:, None]
        slab_counts, _ = np.histogram(slab[keep], bins=edges)
        slabbed += slab_counts
    assert np.array_equal(slabbed, counts)


# --------------------------------------------------------------------- #
# Shard plan and edge cases
# --------------------------------------------------------------------- #

def test_plan_is_deterministic_and_budgeted():
    backend = make_backend("sharded-blocked", n_workers=4, memory_budget_mb=8.0)
    plan_a = backend.plan(5000)
    plan_b = backend.plan(5000)
    assert plan_a == plan_b
    assert all(isinstance(shard, BlockShard) for shard in plan_a)
    rows_per_block = max(stop - start
                         for shard in plan_a for start, stop in shard.blocks)
    # 8 MB budget at n=5000: the slab itself must fit well under the budget.
    assert rows_per_block * 5000 * 8 <= 8 * 1024 * 1024


def test_tiny_datasets_short_circuit():
    tiny = sparse_random_dataset(3, 1, 6, density=0.5)
    result = make_backend("sharded-blocked", n_workers=2).search(tiny, 0.5)
    assert result.pairs == []
    empty = sparse_random_dataset(4, 2, 6, density=0.5)
    out = make_backend("sharded-blocked", n_workers=2).search(empty, 2.0)
    assert out.pairs == []  # nothing clears an impossible threshold


def test_streaming_rejects_unknown_measure(dataset):
    with pytest.raises(ValueError, match="unsupported streaming measure"):
        list(iter_similarity_blocks_sharded(dataset, "hamming"))


def test_streaming_out_of_range_fault_target_fails_loudly(dataset):
    with pytest.raises(ValueError, match="out of range"):
        list(iter_similarity_blocks_sharded(dataset, "cosine", block_rows=9,
                                            n_workers=1,
                                            inject_block_fault=99))


# --------------------------------------------------------------------- #
# Stress: 20k rows, 8 MB per-worker budget, vs the cached sweep
# --------------------------------------------------------------------- #

@pytest.mark.slow
def test_stress_20k_rows_sharded_equals_cached_single_process_sweep():
    dataset = sparse_random_dataset(424242, 20_000, 4_000, density=0.002,
                                    n_clusters=40)
    cached = CachedApssEngine()  # single-process exact-blocked sweep
    sharded = ApssEngine("sharded-blocked", n_workers=2, memory_budget_mb=8.0)
    thresholds = (0.55, 0.7)  # ascending: the second is a pure cache hit
    for threshold in thresholds:
        expected = cached.search(dataset, threshold, "cosine")
        result = sharded.search(dataset, threshold, "cosine")
        assert result.pair_count() == expected.pair_count()
        assert result.pair_set() == expected.pair_set(), (
            f"sharded pair set diverged at t={threshold} on {dataset.name}")
    assert cached.hits == 1 and cached.misses == 1
