"""Tests for the LAM driver and PLAM speedup model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import TransactionDatabase, make_planted_transactions, make_weblike_graph_transactions
from repro.lam import LAM, parallel_speedup_estimate


@pytest.fixture(scope="module")
def planted():
    return make_planted_transactions(300, 150, n_patterns=10,
                                     pattern_support=(0.08, 0.2), seed=81)


@pytest.fixture(scope="module")
def lam5_result(planted):
    return LAM(n_passes=5, max_partition_size=80, seed=0).run(planted)


def test_lam_compresses_planted_patterns(lam5_result):
    assert lam5_result.compression_ratio > 1.3
    assert lam5_result.n_patterns > 0


def test_lam_is_lossless(planted, lam5_result):
    decoded = lam5_result.compressed.decode()
    assert [set(t) for t in decoded] == [set(t) for t in planted]


def test_lam_passes_improve_monotonically(lam5_result):
    ratios = [p.compression_ratio for p in lam5_result.passes]
    assert len(ratios) == 5
    for earlier, later in zip(ratios, ratios[1:]):
        assert later >= earlier - 1e-9
    # Several passes help (the Figure 4.12 right-hand trend).
    assert ratios[-1] > ratios[0]


def test_lam_phase_timer_reports_both_phases(lam5_result):
    totals = lam5_result.timers.as_dict()
    assert set(totals) == {"localize", "mine"}
    assert all(v >= 0 for v in totals.values())


def test_lam_pattern_length_histogram(lam5_result):
    histogram = lam5_result.pattern_length_histogram()
    assert sum(histogram.values()) == lam5_result.n_patterns
    assert all(length >= 2 for length in histogram)


def test_lam_cumulative_compression_by_length(lam5_result):
    curve = lam5_result.cumulative_compression_by_length()
    ratios = [ratio for _, ratio in curve]
    assert ratios == sorted(ratios)
    assert ratios[-1] <= lam5_result.compression_ratio + 0.3


def test_lam_utility_functions_both_work(planted):
    area = LAM(n_passes=2, utility="area", max_partition_size=80, seed=1).run(planted)
    rc = LAM(n_passes=2, utility="rc", max_partition_size=80, seed=1).run(planted)
    assert area.compression_ratio > 1.0
    assert rc.compression_ratio > 1.0
    # The two utilities give broadly comparable compression (Figure 4.5).
    assert abs(area.compression_ratio - rc.compression_ratio) < 0.8


def test_lam_on_weblike_graph_transactions():
    graph_db = make_weblike_graph_transactions(300, avg_degree=12, seed=2)
    result = LAM(n_passes=3, max_partition_size=60, seed=0).run(graph_db)
    assert result.compression_ratio > 1.0
    assert [set(t) for t in result.compressed.decode()] == [set(t) for t in graph_db]


def test_lam_handles_incompressible_data():
    rows = [[3 * i, 3 * i + 1, 3 * i + 2] for i in range(60)]  # disjoint rows
    db = TransactionDatabase(rows)
    result = LAM(n_passes=2, seed=0).run(db)
    assert result.compression_ratio == pytest.approx(1.0)
    assert result.n_patterns == 0


def test_lam_argument_validation():
    with pytest.raises(ValueError):
        LAM(n_passes=0)
    with pytest.raises(ValueError):
        LAM(n_hashes=0)


def test_parallel_speedup_estimate_properties():
    times = [1.0] * 16
    assert parallel_speedup_estimate(times, 1) == pytest.approx(1.0)
    assert parallel_speedup_estimate(times, 4) == pytest.approx(4.0)
    assert parallel_speedup_estimate(times, 16) == pytest.approx(16.0)
    # One dominant task bounds the speedup (load imbalance).
    skewed = [8.0] + [1.0] * 8
    assert parallel_speedup_estimate(skewed, 8) < 2.1
    assert parallel_speedup_estimate([], 4) == 1.0
    with pytest.raises(ValueError):
        parallel_speedup_estimate(times, 0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=30),
       st.integers(1, 16))
def test_property_speedup_bounded_by_workers_and_task_count(times, workers):
    speedup = parallel_speedup_estimate(times, workers)
    assert 1.0 <= speedup + 1e-9
    assert speedup <= min(workers, len(times)) + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sets(st.integers(0, 40), min_size=2, max_size=12),
                min_size=4, max_size=30))
def test_property_lam_lossless_and_never_expands(rows):
    """LAM decoding is always lossless and the ratio never drops below ~1."""
    db = TransactionDatabase(rows, n_labels=41)
    result = LAM(n_passes=2, max_partition_size=10, seed=3).run(db)
    assert [set(t) for t in result.compressed.decode()] == [set(t) for t in db]
    assert result.compression_ratio >= 0.99
