"""Tests for compressed-analytics classification and compressibility scans."""

import pytest

from repro.datasets import make_clustered_vectors, make_labeled_transactions
from repro.graphs import similarity_graph
from repro.lam import (
    LAM,
    CompressibilityPoint,
    PatternClassifier,
    compressibility_scan,
    train_test_split_transactions,
)


@pytest.fixture(scope="module")
def labeled_db():
    return make_labeled_transactions(240, 70, 3, class_pattern_support=0.7,
                                     noise_items=4, seed=101)


def test_train_test_split_shapes(labeled_db):
    train, test = train_test_split_transactions(labeled_db, test_fraction=0.25,
                                                seed=1)
    assert train.n_transactions + test.n_transactions == labeled_db.n_transactions
    assert test.n_transactions == pytest.approx(0.25 * labeled_db.n_transactions,
                                                abs=2)
    assert train.labels is not None and test.labels is not None


def test_train_test_split_validation(labeled_db):
    with pytest.raises(ValueError):
        train_test_split_transactions(labeled_db, test_fraction=1.5)
    unlabeled = labeled_db.subset(range(10))
    unlabeled.labels = None
    with pytest.raises(ValueError):
        train_test_split_transactions(unlabeled)


def test_lam_classifier_beats_majority_baseline(labeled_db):
    train, test = train_test_split_transactions(labeled_db, seed=2)
    classifier = PatternClassifier("lam", seed=1).fit(train)
    accuracy = classifier.accuracy(test)
    labels = list(test.labels)
    majority_accuracy = max(labels.count(c) for c in set(labels)) / len(labels)
    assert accuracy > majority_accuracy + 0.1
    assert accuracy > 0.6


def test_krimp_classifier_runs_and_is_comparable(labeled_db):
    """Figure 4.9: the LAM classifier is on par with the Krimp classifier."""
    train, test = train_test_split_transactions(labeled_db, seed=3)
    lam_accuracy = PatternClassifier("lam", seed=1).fit(train).accuracy(test)
    krimp_accuracy = PatternClassifier("krimp", min_support=3, seed=1).fit(train).accuracy(test)
    assert 0.0 <= krimp_accuracy <= 1.0
    assert lam_accuracy >= krimp_accuracy - 0.15


def test_classifier_validation(labeled_db):
    with pytest.raises(ValueError):
        PatternClassifier("svm")
    with pytest.raises(RuntimeError):
        PatternClassifier("lam").predict_one([1, 2])
    unlabeled = labeled_db.subset(range(10))
    unlabeled.labels = None
    with pytest.raises(ValueError):
        PatternClassifier("lam").fit(unlabeled)


def test_classifier_cross_validation(labeled_db):
    small = labeled_db.subset(range(120))
    accuracy = PatternClassifier("lam", seed=1).cross_validate(small, folds=3)
    assert 0.3 <= accuracy <= 1.0


@pytest.fixture(scope="module")
def clustered_vectors():
    return make_clustered_vectors(90, 8, 4, separation=5.0, cluster_std=0.7,
                                  seed=103)


def test_compressibility_scan_from_dataset(clustered_vectors):
    thresholds = [0.4, 0.6, 0.8, 0.95]
    points, interesting = compressibility_scan(
        clustered_vectors, thresholds, lam=LAM(n_passes=2, max_partition_size=100))
    assert len(points) == 4
    assert all(isinstance(p, CompressibilityPoint) for p in points)
    assert all(p.compression_ratio >= 1.0 for p in points)
    # A clearly clustered dataset is compressible at some threshold.
    assert max(p.compression_ratio for p in points) > 1.2
    assert all(0.0 <= t <= 1.0 for t in interesting)


def test_compressibility_scan_from_prebuilt_graphs(clustered_vectors):
    graphs = {t: similarity_graph(clustered_vectors, t) for t in (0.5, 0.9)}
    points, _ = compressibility_scan(graphs, [0.5, 0.9],
                                     lam=LAM(n_passes=1, max_partition_size=100))
    assert len(points) == 2
    assert points[0].n_edges >= points[1].n_edges


def test_compressibility_scan_rejects_bad_source():
    with pytest.raises(TypeError):
        compressibility_scan([1, 2, 3], [0.5])
