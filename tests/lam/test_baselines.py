"""Tests for frequent/closed itemsets and the compression baselines."""

import pytest

from repro.datasets import TransactionDatabase, make_planted_transactions
from repro.lam import (
    LAM,
    cdb_compress,
    closed_itemsets,
    frequent_itemsets,
    krimp_compress,
    slim_compress,
)

SMALL_DB = TransactionDatabase([
    [0, 1, 2],
    [0, 1, 2],
    [0, 1, 2, 3],
    [0, 1],
    [3, 4],
    [3, 4],
], n_labels=5)


def test_frequent_itemsets_supports_are_exact():
    frequents = frequent_itemsets(SMALL_DB, min_support=2)
    assert frequents[(0, 1)] == 4
    assert frequents[(0, 1, 2)] == 3
    assert frequents[(3, 4)] == 2
    assert (2, 3) not in frequents
    for itemset, support in frequents.items():
        assert SMALL_DB.support(itemset) == support


def test_frequent_itemsets_respects_max_length():
    frequents = frequent_itemsets(SMALL_DB, min_support=2, max_length=2)
    assert all(len(itemset) <= 2 for itemset in frequents)


def test_frequent_itemsets_min_support_validation():
    with pytest.raises(ValueError):
        frequent_itemsets(SMALL_DB, 0)


def test_closed_itemsets_drop_non_closed():
    closed = closed_itemsets(SMALL_DB, min_support=2)
    # (0,) has support 4, same as (0, 1): not closed.  (0, 1) is closed.
    assert (0,) not in closed
    assert closed[(0, 1)] == 4
    assert closed[(0, 1, 2)] == 3
    assert closed[(3, 4)] == 2
    # Every closed itemset is frequent and has no equal-support superset.
    frequents = frequent_itemsets(SMALL_DB, min_support=2)
    for itemset, support in closed.items():
        supersets = [other for other in frequents
                     if set(itemset) < set(other) and frequents[other] == support]
        assert supersets == []


@pytest.fixture(scope="module")
def planted():
    return make_planted_transactions(250, 120, n_patterns=8,
                                     pattern_support=(0.1, 0.25), seed=91)


def test_krimp_compresses_and_is_lossless(planted):
    result = krimp_compress(planted, min_support=20, max_length=10)
    assert result.compression_ratio > 1.2
    assert [set(t) for t in result.compressed.decode()] == [set(t) for t in planted]
    assert result.n_patterns > 0
    assert result.seconds > 0


def test_cdb_compresses_and_is_lossless(planted):
    result = cdb_compress(planted, min_support=20, max_length=10)
    assert result.compression_ratio > 1.2
    assert [set(t) for t in result.compressed.decode()] == [set(t) for t in planted]


def test_slim_compresses_and_is_lossless(planted):
    result = slim_compress(planted, max_iterations=80)
    assert result.compression_ratio > 1.2
    assert [set(t) for t in result.compressed.decode()] == [set(t) for t in planted]


def test_lam_is_faster_than_candidate_based_baselines(planted):
    """Figure 4.7's qualitative claim at laptop scale."""
    import time

    start = time.perf_counter()
    lam_result = LAM(n_passes=5, max_partition_size=60, seed=0).run(planted)
    lam_seconds = time.perf_counter() - start

    krimp_result = krimp_compress(planted, min_support=20, max_length=10)
    cdb_result = cdb_compress(planted, min_support=20, max_length=10)
    assert krimp_result.seconds > lam_seconds
    assert cdb_result.seconds > lam_seconds
    # Compression is in the same ballpark (Figure 4.6).
    assert lam_result.compression_ratio > 0.5 * max(krimp_result.compression_ratio,
                                                    cdb_result.compression_ratio)


def test_baseline_sampling_reduces_runtime_and_ratio(planted):
    """Figure 4.8: running CDB on a sample cuts runtime but also compression."""
    full = cdb_compress(planted, min_support=20, max_length=10)
    sample = planted.sample(0.4, seed=1)
    support = max(2, int(20 * 0.4))
    sampled = cdb_compress(sample, min_support=support, max_length=10)
    assert sampled.seconds < full.seconds
