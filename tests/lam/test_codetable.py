"""Tests for code tables and compressed databases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import TransactionDatabase
from repro.lam import CodeTable, CompressedDatabase


def test_add_and_expand_simple_pattern():
    table = CodeTable(n_labels=10)
    symbol = table.add([3, 1, 2])
    assert symbol == 10
    assert table.is_code(symbol)
    assert not table.is_code(5)
    assert table.pattern_for(symbol) == (1, 2, 3)
    assert table.expand(symbol) == frozenset({1, 2, 3})
    assert table.expand(7) == frozenset({7})


def test_nested_codes_expand_recursively():
    table = CodeTable(n_labels=5)
    first = table.add([0, 1])
    second = table.add([first, 2])
    assert table.expand(second) == frozenset({0, 1, 2})
    assert table.dereference_depth(second) == 2
    assert table.dereference_depth(first) == 1
    assert table.dereference_depth(3) == 0


def test_code_table_sizes_and_lengths():
    table = CodeTable(n_labels=5)
    first = table.add([0, 1, 2])
    table.add([first, 3])
    assert len(table) == 2
    assert table.size_in_symbols() == 5
    assert sorted(table.pattern_lengths()) == [3, 4]


def test_add_empty_pattern_rejected():
    with pytest.raises(ValueError):
        CodeTable(n_labels=3).add([])


def test_pattern_for_unknown_symbol():
    table = CodeTable(n_labels=3)
    with pytest.raises(KeyError):
        table.pattern_for(2)
    with pytest.raises(KeyError):
        table.pattern_for(99)


def test_compressed_database_round_trip():
    table = CodeTable(n_labels=6)
    code = table.add([1, 2, 3])
    rows = [{code, 4}, {code}, {0, 5}]
    compressed = CompressedDatabase(rows=rows, code_table=table,
                                    original_size=10)
    decoded = compressed.decode()
    assert decoded.transaction(0) == (1, 2, 3, 4)
    assert decoded.transaction(1) == (1, 2, 3)
    assert decoded.transaction(2) == (0, 5)
    assert compressed.rows_size() == 5
    assert compressed.total_size() == 8
    assert compressed.compression_ratio() == pytest.approx(10 / 8)


def test_mean_dereferences():
    table = CodeTable(n_labels=4)
    first = table.add([0, 1])
    second = table.add([first, 2])
    compressed = CompressedDatabase(rows=[{second}, {3}], code_table=table,
                                    original_size=5)
    assert compressed.mean_dereferences() == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sets(st.integers(0, 25), min_size=1, max_size=10),
                min_size=2, max_size=12))
def test_property_greedy_encoding_is_lossless(rows):
    """Encoding any shared pattern and decoding recovers the original rows."""
    db = TransactionDatabase(rows, n_labels=26)
    table = CodeTable(n_labels=26)
    working = [set(row) for row in db]
    # Consume the intersection of the two largest rows when it is a pattern.
    ordered = sorted(range(len(working)), key=lambda i: -len(working[i]))
    shared = working[ordered[0]] & working[ordered[1]]
    if len(shared) >= 2:
        symbol = table.add(sorted(shared))
        for row in working:
            if shared.issubset(row):
                row -= shared
                row.add(symbol)
    compressed = CompressedDatabase(rows=working, code_table=table,
                                    original_size=db.size)
    decoded = compressed.decode()
    assert [set(t) for t in decoded] == [set(t) for t in db]
    assert compressed.compression_ratio() >= 1.0 or len(shared) < 2
