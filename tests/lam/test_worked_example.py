"""The worked example of Section 4.4: Tables 4.1 and 4.2 and Figure 4.3.

The localized partition of Table 4.1 must yield exactly the potential
itemsets of Table 4.2 with the documented Area utilities, and the greedy
consumption must pick them in utility order.
"""

import pytest

from repro.lam import CodeTable, PatternTrie, area_utility, mine_consume_phase

#: Table 4.1, keyed by transaction id.
TABLE_4_1 = {
    23: (6, 10, 5, 12, 15, 1, 2, 3),
    102: (1, 2, 3, 20),
    55: (2, 3, 10, 12, 1, 5, 6, 15),
    204: (1, 7, 8, 9, 3),
    13: (1, 2, 3, 8),
    64: (1, 2, 3, 5, 6, 10, 12, 15),
    43: (1, 2, 5, 10, 22, 31, 8, 23, 36, 6),
    431: (1, 2, 5, 10, 21, 31, 67, 8, 23, 36, 6),
}

#: Table 4.2: itemset -> (transaction ids, Area utility (L-1)*(F-1)).
TABLE_4_2 = {
    (1, 2, 3, 5, 6, 10, 12, 15): ({23, 55, 64}, 14),
    (1, 2, 5, 6, 8, 10, 23, 31, 36): ({43, 431}, 8),
    (1, 2, 3): ({13, 23, 55, 64, 102}, 8),
    (1, 2): ({13, 23, 43, 55, 64, 102, 431}, 6),
}


@pytest.fixture()
def trie():
    transactions = {tid: tuple(sorted(items)) for tid, items in TABLE_4_1.items()}
    return PatternTrie.from_transactions(transactions, min_item_count=2)


def test_trie_generates_exactly_the_paper_potential_itemsets(trie):
    potentials = {p.items: set(p.transaction_ids) for p in trie.potential_itemsets()}
    assert potentials == {items: tids for items, (tids, _) in TABLE_4_2.items()}


def test_potential_itemset_utilities_match_table_4_2(trie):
    for potential in trie.potential_itemsets():
        expected_tids, expected_utility = TABLE_4_2[potential.items]
        lengths = [len(TABLE_4_1[tid]) for tid in potential.transaction_ids]
        assert area_utility(potential.items, lengths) == expected_utility
        assert potential.frequency == len(expected_tids)


def test_mine_consume_processes_in_utility_order():
    row_ids = sorted(TABLE_4_1)
    index_of = {tid: i for i, tid in enumerate(row_ids)}
    rows = [set(TABLE_4_1[tid]) for tid in row_ids]
    code_table = CodeTable(n_labels=100)

    consumed = mine_consume_phase(rows, list(range(len(rows))), code_table,
                                  utility="area")
    consumed_items = [pattern.items for pattern in consumed]

    # The top-utility pattern of Table 4.2 is consumed first.
    assert consumed_items[0] == (1, 2, 3, 5, 6, 10, 12, 15)
    # The long pattern specific to transactions 43/431 is also consumed.
    assert (1, 2, 5, 6, 8, 10, 23, 31, 36) in consumed_items
    # {1,2,3} survives (reduced to transactions 102 and 13) and is consumed;
    # {1,2} no longer covers two transactions afterwards and is skipped.
    assert (1, 2, 3) in consumed_items
    assert (1, 2) not in consumed_items

    # Consumption replaced the pattern items with single code symbols.
    for tid in (23, 55, 64):
        row = rows[index_of[tid]]
        assert all(code_table.is_code(s) or s not in (5, 6, 10, 12, 15)
                   for s in row)

    # Everything is still losslessly recoverable.
    for tid in row_ids:
        expanded = code_table.expand_many(rows[index_of[tid]])
        assert expanded == frozenset(TABLE_4_1[tid])
