"""Tests for the localization phase and the utility functions."""

import numpy as np
import pytest

from repro.datasets import TransactionDatabase, make_planted_transactions
from repro.lam import area_utility, get_utility, localize_phase, relative_closedness


def test_area_utility_values():
    assert area_utility([1, 2, 3], [5, 5]) == 2 * 1
    assert area_utility((1, 2, 3, 4, 5, 6, 7, 8), [1, 2, 3]) == 7 * 2  # Table 4.2 row 1
    assert area_utility([1], [3, 3, 3]) == 0
    assert area_utility([1, 2], [4]) == 0


def test_relative_closedness_values():
    assert relative_closedness([1, 2, 3], [6, 3]) == pytest.approx(0.5 + 1.0)
    assert relative_closedness([1, 2], [0]) == 0.0


def test_get_utility_lookup():
    assert get_utility("area") is area_utility
    assert get_utility("rc") is relative_closedness
    with pytest.raises(KeyError):
        get_utility("mdl")


def test_localize_covers_all_rows_once():
    db = make_planted_transactions(200, 80, seed=3)
    partitions = localize_phase(db, n_hashes=8, max_partition_size=20, seed=1)
    flattened = sorted(row for partition in partitions for row in partition)
    assert flattened == list(range(db.n_transactions))


def test_localize_respects_partition_size_when_hashes_suffice():
    db = make_planted_transactions(300, 120, seed=4)
    partitions = localize_phase(db, n_hashes=16, max_partition_size=30, seed=1)
    oversized = [p for p in partitions if len(p) > 30]
    # Oversized partitions can only remain when all 16 hashes agree (identical
    # signatures); they should be rare.
    assert len(oversized) <= 2


def test_localize_groups_identical_transactions_together():
    identical = [[1, 2, 3, 4]] * 10
    different = [[50 + i, 60 + i, 70 + i] for i in range(10)]
    db = TransactionDatabase(identical + different, n_labels=100)
    partitions = localize_phase(db, n_hashes=12, max_partition_size=10, seed=2)
    identical_ids = set(range(10))
    # The ten identical transactions share all min-hashes, so some partition
    # must contain all of them.
    assert any(identical_ids.issubset(set(partition)) for partition in partitions)


def test_localize_groups_similar_rows_more_than_random():
    """Partition-mates should have higher Jaccard similarity than random pairs."""
    db = make_planted_transactions(250, 100, n_patterns=6,
                                   pattern_support=(0.1, 0.2), seed=5)
    partitions = localize_phase(db, n_hashes=12, max_partition_size=25, seed=3)
    rows = [set(t) for t in db]

    def jaccard(a, b):
        union = rows[a] | rows[b]
        return len(rows[a] & rows[b]) / len(union) if union else 0.0

    rng = np.random.default_rng(0)
    within = []
    for partition in partitions:
        if len(partition) >= 2:
            for _ in range(min(5, len(partition))):
                a, b = rng.choice(partition, size=2, replace=False)
                within.append(jaccard(int(a), int(b)))
    random_pairs = [jaccard(*rng.choice(db.n_transactions, size=2, replace=False))
                    for _ in range(200)]
    assert np.mean(within) > np.mean(random_pairs)


def test_localize_empty_and_invalid_inputs():
    assert localize_phase([]) == []
    with pytest.raises(ValueError):
        localize_phase([[1, 2]], n_hashes=0)
    with pytest.raises(ValueError):
        localize_phase([[1, 2]], max_partition_size=0)
